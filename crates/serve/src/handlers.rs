//! Request handlers: route dispatch, cache lookups, and payload builds.
//!
//! Every cacheable endpoint follows the same shape: normalize the
//! request into a canonical cache key (defaults filled in, aliases
//! collapsed, parameters in fixed order — for the scenario POSTs the key
//! is the spec's canonical rendering), then `get_or_compute` the
//! rendered body. The compute closures call the same [`api`] builders
//! the CLI's `--json` flags use, which is what makes cached, uncached,
//! and CLI output byte-identical.

use thirstyflops_catalog::SystemId;

use crate::api;
use crate::cache::ResultCache;
use crate::error::ServeError;
use crate::http::{Request, Response};
use crate::metrics::Metrics;
use crate::router::{route, Query, Route};

/// Per-connection time limits (see `docs/SERVING.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it (and frees its worker).
    pub idle_timeout: std::time::Duration,
    /// How long a started request may take to arrive in full (slowloris
    /// guard; exceeding it answers 408 and closes).
    pub read_timeout: std::time::Duration,
    /// Optional per-request deadline (`serve --request-timeout MS`),
    /// measured from the first request byte through the handler.
    /// Exceeding it replaces the response with a JSON 504 (+
    /// `Retry-After`) and closes the connection; `None` disables the
    /// check entirely.
    pub request_timeout: Option<std::time::Duration>,
}

impl Default for Limits {
    /// 5 s idle, 10 s read — generous for an internal API, tight enough
    /// that stuck clients cannot pin workers for long. No per-request
    /// deadline by default (handlers are compute-bound and bounded).
    fn default() -> Limits {
        Limits {
            idle_timeout: std::time::Duration::from_secs(5),
            read_timeout: std::time::Duration::from_secs(10),
            request_timeout: None,
        }
    }
}

/// Shared state behind all workers: the result cache, the per-endpoint
/// counters, the logging switch, the connection limits, and the
/// shutdown flag the connection loops poll.
#[derive(Debug)]
pub struct AppState {
    /// The sharded body cache (see `docs/SERVING.md` for the key scheme).
    pub cache: ResultCache,
    /// Per-endpoint request/latency counters (`/v1/cache/stats`).
    pub metrics: Metrics,
    /// `serve --log`: one stderr line per request.
    pub log_requests: bool,
    /// `serve --log-json`: one structured JSON object per request on
    /// stderr (see [`access_log_line`] for the stable key order).
    pub log_json: bool,
    /// Deterministic request ordinal, incremented once per parsed (or
    /// answerable-parse-error) request across the whole server. It is
    /// the trace id for requests that do not supply `X-Request-Id`, and
    /// the value `--trace-sample 1/N` keys off — never wall-clock.
    pub ordinal: std::sync::atomic::AtomicU64,
    /// Idle/read timeouts applied to every connection.
    pub limits: Limits,
    /// Set by `Server::shutdown` / `Server::drain`: keep-alive loops
    /// finish the request in flight, answer it with `Connection: close`,
    /// and exit; `/readyz` flips to 503.
    pub stop: std::sync::atomic::AtomicBool,
    /// When this state was built (`/healthz`'s `uptime_seconds`).
    pub started: std::time::Instant,
    /// Fault injector driving this server's instrumented sites
    /// (`docs/ROBUSTNESS.md`). `None` — the default — means every site
    /// short-circuits on this one check.
    pub faults: Option<std::sync::Arc<thirstyflops_faults::FaultInjector>>,
}

impl Default for AppState {
    fn default() -> AppState {
        AppState {
            cache: ResultCache::default(),
            metrics: Metrics::default(),
            log_requests: false,
            log_json: false,
            ordinal: std::sync::atomic::AtomicU64::new(0),
            limits: Limits::default(),
            stop: std::sync::atomic::AtomicBool::new(false),
            started: std::time::Instant::now(),
            faults: None,
        }
    }
}

/// What one dispatch did, for metrics and the `--log` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trace {
    /// The metrics family that absorbed the request.
    pub endpoint: &'static str,
    /// True when the body came from the result cache.
    pub cache_hit: bool,
}

/// Dispatches one parsed request to its handler. Never panics; every
/// failure becomes a JSON error response.
pub fn handle(req: &Request, state: &AppState) -> Response {
    handle_traced(req, state).0
}

/// Dispatch plus the trace the connection loop feeds into metrics and
/// logging.
pub fn handle_traced(req: &Request, state: &AppState) -> (Response, Trace) {
    let mut trace = Trace {
        endpoint: "other",
        cache_hit: false,
    };
    let response = match try_handle(req, state, &mut trace) {
        Ok(resp) => resp,
        Err(e) => e.to_response(),
    };
    (response, trace)
}

/// `get_or_compute` that also reports whether the body was a cache hit.
fn cached(
    state: &AppState,
    trace: &mut Trace,
    key: &str,
    compute: impl FnOnce() -> String,
) -> std::sync::Arc<str> {
    let mut computed = false;
    let body = state.cache.get_or_compute(key, || {
        computed = true;
        compute()
    });
    trace.cache_hit = !computed;
    body
}

fn try_handle(req: &Request, state: &AppState, trace: &mut Trace) -> Result<Response, ServeError> {
    let resolved = route(&req.path)?;
    trace.endpoint = resolved.metrics_label();
    if resolved.takes_body() {
        if req.method != "POST" {
            return Err(ServeError::MethodNotAllowed(format!(
                "{} not supported here — POST a scenario spec (docs/SCENARIOS.md)",
                req.method
            )));
        }
    } else if req.method != "GET" {
        return Err(ServeError::MethodNotAllowed(format!(
            "{} not supported — this endpoint is read-only, use GET",
            req.method
        )));
    }
    let query = Query::parse(&req.query)?;
    match resolved {
        Route::Healthz => {
            query.expect_only(&[])?;
            Ok(Response::json(
                200,
                api::to_json(&HealthBody::snapshot(state)),
            ))
        }
        Route::Readyz => {
            query.expect_only(&[])?;
            if state.stop.load(std::sync::atomic::Ordering::SeqCst) {
                Ok(Response::json(
                    503,
                    api::to_json(&crate::error::ErrorBody {
                        status: 503,
                        error: "server is draining; retry against another instance".into(),
                    }),
                )
                .with_retry_after(1))
            } else {
                Ok(Response::json(
                    200,
                    api::to_json(&ReadyBody { ready: true }),
                ))
            }
        }
        Route::CacheStats => {
            query.expect_only(&[])?;
            Ok(Response::json(
                200,
                api::to_json(&api::cache_stats_payload(
                    state.cache.stats(),
                    state.metrics.snapshot(),
                )),
            ))
        }
        Route::Systems => {
            query.expect_only(&[])?;
            let body = cached(state, trace, "systems", || {
                api::to_json(&api::systems_payload())
            });
            Ok(Response::json(200, body))
        }
        Route::Footprint(system) => {
            query.expect_only(&["seed"])?;
            let id = parse_system(&system)?;
            let seed = query.seed()?;
            let key = format!("footprint/{}?seed={seed}", id.slug());
            let body = cached(state, trace, &key, || {
                api::to_json(&api::footprint_payload(id, seed))
            });
            Ok(Response::json(200, body))
        }
        Route::Compare => {
            query.expect_only(&["a", "b", "seed"])?;
            let a = parse_system(query.required("a")?)?;
            let b = parse_system(query.required("b")?)?;
            let seed = query.seed()?;
            // Aliases collapse via the slugs, so ?a=Marconi100 and
            // ?a=marconi share one entry; a/b order is preserved (the
            // payload is ordered).
            let key = format!("compare/{}/{}?seed={seed}", a.slug(), b.slug());
            let body = cached(state, trace, &key, || {
                api::to_json(&api::compare_payload(a, b, seed))
            });
            Ok(Response::json(200, body))
        }
        Route::Rank => {
            query.expect_only(&["seed", "adjusted"])?;
            let seed = query.seed()?;
            let adjusted = query.flag("adjusted")?;
            let key = format!("rank?adjusted={adjusted}&seed={seed}");
            let body = cached(state, trace, &key, || {
                api::to_json(&api::rank_payload(adjusted, seed))
            });
            Ok(Response::json(200, body))
        }
        Route::Scenario(system) => {
            query.expect_only(&["seed"])?;
            let id = parse_system(&system)?;
            let seed = query.seed()?;
            let key = format!("scenario/{}?seed={seed}", id.slug());
            let body = cached(state, trace, &key, || {
                api::to_json(&api::scenario_payload(id, seed))
            });
            Ok(Response::json(200, body))
        }
        Route::ScenarioRun => {
            query.expect_only(&[])?;
            let spec = parse_spec_body(&req.body, thirstyflops_scenario::ScenarioSpec::from_json)?;
            // The canonical rendering *is* the cache key: two spec files
            // that mean the same thing (aliases, defaults, whitespace,
            // key order) share one entry.
            let key = format!("scenarios/run:{}", spec.canonical_json());
            let body = cached(state, trace, &key, || {
                api::to_json(&api::scenario_run_payload(&spec).expect("spec was validated"))
            });
            Ok(Response::json(200, body))
        }
        Route::ScenarioSweep => {
            query.expect_only(&[])?;
            let sweep = parse_spec_body(&req.body, thirstyflops_scenario::SweepSpec::from_json)?;
            let key = format!("scenarios/sweep:{}", sweep.canonical_json());
            let body = cached(state, trace, &key, || {
                api::to_json(&api::scenario_sweep_payload(&sweep).expect("sweep was validated"))
            });
            Ok(Response::json(200, body))
        }
        Route::ExperimentIndex => {
            query.expect_only(&[])?;
            let body = cached(state, trace, "experiments", || {
                api::to_json(&api::experiment_index_payload())
            });
            Ok(Response::json(200, body))
        }
        Route::Experiment(id) => {
            query.expect_only(&[])?;
            if !thirstyflops_experiments::ids().contains(&id.as_str()) {
                return Err(ServeError::NotFound(format!(
                    "no experiment {id:?} — GET /v1/experiments lists the known ids"
                )));
            }
            let key = format!("experiments/{id}");
            let body = cached(state, trace, &key, || {
                api::to_json(&thirstyflops_experiments::select(&[id.as_str()]))
            });
            Ok(Response::json(200, body))
        }
        Route::Metrics => {
            query.expect_only(&[])?;
            // Touch the lazily-registered core families so a fresh
            // process still exposes them (with zero values) before the
            // first simulation runs.
            let _ = thirstyflops_core::simcache::stats();
            let _ = thirstyflops_core::batch::stats();
            // Chaos runs additionally force-register the injected-fault
            // family: a plan that has not fired yet still exposes its
            // zeroed per-site counters, so dashboards can tell "plan
            // installed, quiet" from "no plan at all".
            if state.faults.is_some() || thirstyflops_faults::global().is_some() {
                thirstyflops_faults::register_injected_family();
            }
            // Never cached: the body is the live counter state. The
            // global registry renders first (sorted by family name),
            // then this server's per-endpoint table.
            let mut body = thirstyflops_obs::registry::render_prometheus();
            body.push_str(&state.metrics.render_prometheus());
            Ok(Response::text(200, body))
        }
        Route::Trace => {
            query.expect_only(&["last"])?;
            let last = match query.get("last") {
                None => 256,
                Some(raw) => raw.parse::<usize>().map_err(|_| {
                    ServeError::BadRequest(format!(
                        "last must be a non-negative integer, got {raw:?}"
                    ))
                })?,
            };
            // Never cached: the body is the live recorder ring. `last`
            // bounds the payload (default 256 events) so a polling
            // client cannot pull the full 65k-event ring by accident.
            Ok(Response::json(
                200,
                thirstyflops_obs::trace::chrome_trace_json(Some(last)),
            ))
        }
    }
}

fn parse_system(name: &str) -> Result<SystemId, ServeError> {
    name.parse::<SystemId>().map_err(|e| {
        ServeError::NotFound(format!("{e} — GET /v1/systems lists the cataloged systems"))
    })
}

/// Parses a POSTed spec body, mapping empty bodies and spec errors onto
/// 400s with the parser's message.
fn parse_spec_body<T>(
    body: &str,
    parse: impl FnOnce(&str) -> Result<T, thirstyflops_scenario::ScenarioError>,
) -> Result<T, ServeError> {
    if body.trim().is_empty() {
        return Err(ServeError::BadRequest(
            "request body must be a scenario spec (JSON; see docs/SCENARIOS.md)".into(),
        ));
    }
    parse(body).map_err(|e| ServeError::BadRequest(e.to_string()))
}

/// `GET /readyz` body while the server is accepting traffic. During a
/// drain the endpoint answers a JSON 503 with `Retry-After` instead —
/// liveness (`/healthz`) and readiness are distinct signals, so a
/// process manager can pull a draining instance out of rotation without
/// restarting it (`docs/ROBUSTNESS.md`).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ReadyBody {
    /// Always `true` in a 200 (draining readiness is a 503).
    pub ready: bool,
}

/// `GET /healthz` body (documented in `docs/SERVING.md`).
///
/// `uptime_seconds` and `requests_total` let loadgen and external
/// probes detect silent restarts: a restarted process reports a lower
/// uptime and a reset request count than the previous poll saw.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HealthBody {
    /// Always `"ok"` while the process is serving.
    pub status: String,
    /// Whole seconds since the server state was built.
    pub uptime_seconds: u64,
    /// Requests answered so far across every endpoint family.
    pub requests_total: u64,
}

impl HealthBody {
    /// The healthy answer for the current server state.
    pub fn snapshot(state: &AppState) -> HealthBody {
        HealthBody {
            status: "ok".to_string(),
            uptime_seconds: state.started.elapsed().as_secs(),
            requests_total: state.metrics.total_requests(),
        }
    }
}

/// Serves one connection end-to-end as a keep-alive loop: wait for
/// bytes (polling the shutdown flag), parse, dispatch, record, write —
/// and repeat until the client asks to close, goes idle past the limit,
/// errors, or the server shuts down. I/O errors mid-write are swallowed
/// — there is nobody left to answer — but every parse failure that can
/// still be answered gets its 400/408/413/431 before the close, and a
/// panicking handler gets a structured JSON 500 instead of a silently
/// dropped connection. When `state.faults` carries a plan, the
/// handler-panic and response-write fault sites fire here
/// (`docs/ROBUSTNESS.md`); write faults only ever target 200 responses,
/// so error responses stay well-formed — the fail-closed invariant.
pub fn serve_connection(stream: std::net::TcpStream, state: &AppState) {
    use std::sync::atomic::Ordering;
    // `&TcpStream: Read`, so the reader borrows while the owned stream
    // keeps `set_read_timeout` and the write half.
    let mut reader = crate::http::RequestReader::new(&stream);
    loop {
        if !wait_for_request(&stream, &mut reader, state) {
            return; // idle timeout, clean close, shutdown, or error
        }
        let _ = stream.set_read_timeout(Some(state.limits.read_timeout));
        let started = std::time::Instant::now();
        let mut shed_reason: Option<&'static str> = None;
        // The request-scoped trace context: every span the handler opens
        // (directly or on re-attached sweep workers) and every fault that
        // fires below parents under this request's trace id. Created for
        // every answerable request; whether span events actually land in
        // the ring is the recorder's `enabled && sampled` decision, keyed
        // off the deterministic ordinal so sampling never consults a
        // clock or RNG (`docs/OBSERVABILITY.md`).
        let mut trace_ctx: Option<thirstyflops_obs::trace::TraceGuard> = None;
        let (mut response, request_line, mut trace, mut close, request_id) = match reader
            .read_request()
        {
            Ok(req) => {
                let ordinal = state.ordinal.fetch_add(1, Ordering::Relaxed);
                let request_id = req
                    .request_id
                    .clone()
                    .unwrap_or_else(|| format!("tf-{ordinal:016x}"));
                trace_ctx = Some(thirstyflops_obs::trace::begin(
                    ordinal,
                    thirstyflops_obs::trace::enabled() && thirstyflops_obs::trace::sampled(ordinal),
                ));
                let line = format!("{} {}", req.method, req.path);
                // Shutdown mid-connection: answer the request in flight,
                // then close instead of waiting for another.
                let close = req.close || state.stop.load(Ordering::SeqCst);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if let Some(faults) = &state.faults {
                        if faults.decide_handler_panic() {
                            panic!("{}", thirstyflops_faults::PANIC_MARKER);
                        }
                    }
                    handle_traced(&req, state)
                }));
                match outcome {
                    Ok((response, trace)) => (response, line, trace, close, request_id),
                    Err(_) => {
                        // The handler (or the injector) panicked: the
                        // client still gets a well-formed JSON 500, and
                        // the connection closes cleanly afterwards —
                        // never a silent drop that stalls a pipelined
                        // peer until its read timeout.
                        let trace = Trace {
                            endpoint: route(&req.path).map_or("other", |r| r.metrics_label()),
                            cache_hit: false,
                        };
                        let response = Response::json(
                            500,
                            api::to_json(&crate::error::ErrorBody {
                                status: 500,
                                error: "internal error: the request handler panicked; \
                                        the connection closes after this response"
                                    .into(),
                            }),
                        );
                        (response, line, trace, true, request_id)
                    }
                }
            }
            Err(e) => match parse_error_response(e) {
                // Parse failures poison the framing: always close after.
                // Over-cap rejections (oversized head or body) count
                // into the `shed` family with the connection sheds so
                // capacity pressure is visible in `/v1/cache/stats`.
                Some(resp) => {
                    let endpoint = match resp.status {
                        431 => {
                            shed_reason = Some("head_too_large");
                            "shed"
                        }
                        413 => {
                            shed_reason = Some("body_too_large");
                            "shed"
                        }
                        _ => "other",
                    };
                    let trace = Trace {
                        endpoint,
                        cache_hit: false,
                    };
                    // Unparsable requests cannot carry a usable
                    // `X-Request-Id`, so they get a server-assigned one;
                    // the ordinal still advances so ids stay unique.
                    let ordinal = state.ordinal.fetch_add(1, Ordering::Relaxed);
                    let request_id = format!("tf-{ordinal:016x}");
                    (
                        resp,
                        "??? (unparsable request)".to_string(),
                        trace,
                        true,
                        request_id,
                    )
                }
                None => return, // nothing arrived; likely a probe
            },
        };
        // The response-write fault site: one draw per 200 response
        // decides latency / truncate / stall (mutually exclusive).
        // Error responses never enter the site, so injected faults can
        // corrupt data-path bytes but never the error contract.
        let mut write_fault = None;
        if response.status == 200 {
            if let Some(faults) = &state.faults {
                write_fault = faults.decide_write();
            }
        }
        if let Some(thirstyflops_faults::WriteFault::Latency(delay)) = write_fault {
            std::thread::sleep(delay);
            write_fault = None;
        }
        // The per-request deadline, checked after the handler (and any
        // injected latency): a 200 that took too long becomes a JSON
        // 504 with retry guidance; the client never sees a stale body
        // dribble out long after it gave up.
        if let Some(limit) = state.limits.request_timeout {
            if response.status == 200 && started.elapsed() >= limit {
                response = Response::json(
                    504,
                    api::to_json(&crate::error::ErrorBody {
                        status: 504,
                        error: format!(
                            "request exceeded the {} ms deadline (serve --request-timeout)",
                            limit.as_millis()
                        ),
                    }),
                )
                .with_retry_after(1);
                close = true;
                shed_reason = Some("deadline");
                trace = Trace {
                    endpoint: "shed",
                    cache_hit: false,
                };
                write_fault = None;
            }
        }
        // Every response — including error and shed responses — echoes
        // the trace id so clients can correlate wire exchanges with
        // `/v1/trace` spans and `--log-json` lines.
        response.request_id = Some(request_id.clone());
        let wrote = write_response(&stream, &response, close, write_fault);
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        state
            .metrics
            .record(trace.endpoint, trace.cache_hit, micros);
        if let Some(reason) = shed_reason {
            state.metrics.record_shed(reason);
        }
        if state.log_requests {
            // One parseable line per request: method+path, status, body
            // bytes, wall-clock, cache verdict.
            eprintln!(
                "{request_line} {} {}B {micros}us {}",
                response.status,
                response.body.len(),
                if trace.cache_hit { "hit" } else { "miss" }
            );
        }
        if state.log_json {
            let faults = trace_ctx
                .as_ref()
                .map(|t| t.fault_marks())
                .unwrap_or_default();
            eprintln!(
                "{}",
                access_log_line(
                    &request_id,
                    trace.endpoint,
                    response.status,
                    response.body.len(),
                    micros,
                    trace.cache_hit,
                    shed_reason,
                    &faults,
                )
            );
        }
        drop(trace_ctx);
        if close || !wrote {
            return;
        }
    }
}

/// Formats one `serve --log-json` access-log line: a single strict-JSON
/// object per request with a stable key order — `trace`, `endpoint`,
/// `status`, `bytes`, `micros`, `cache`, `shed`, `faults` — so log
/// pipelines can parse every line with one schema. `trace` is the
/// echoed `X-Request-Id`; `shed` is `null` unless the request was shed;
/// `faults` lists the injected-fault sites that fired inside this
/// request (empty outside chaos runs).
#[allow(clippy::too_many_arguments)]
pub fn access_log_line(
    trace_id: &str,
    endpoint: &str,
    status: u16,
    bytes: usize,
    micros: u64,
    cache_hit: bool,
    shed: Option<&str>,
    faults: &[&'static str],
) -> String {
    fn push_json_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
    let mut out = String::with_capacity(160);
    out.push_str("{\"trace\":");
    push_json_str(&mut out, trace_id);
    out.push_str(",\"endpoint\":");
    push_json_str(&mut out, endpoint);
    out.push_str(&format!(
        ",\"status\":{status},\"bytes\":{bytes},\"micros\":{micros},\"cache\":"
    ));
    push_json_str(&mut out, if cache_hit { "hit" } else { "miss" });
    out.push_str(",\"shed\":");
    match shed {
        None => out.push_str("null"),
        Some(reason) => push_json_str(&mut out, reason),
    }
    out.push_str(",\"faults\":[");
    for (i, site) in faults.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, site);
    }
    out.push_str("]}");
    out
}

/// Writes one response, applying an injected truncate/stall fault when
/// one fired. Returns `false` when the connection must close (write
/// error or deliberate truncation).
fn write_response(
    stream: &std::net::TcpStream,
    response: &Response,
    close: bool,
    fault: Option<thirstyflops_faults::WriteFault>,
) -> bool {
    use std::io::Write;
    match fault {
        None => response.write_to(&mut (&*stream), close).is_ok(),
        Some(thirstyflops_faults::WriteFault::Truncate) => {
            // Half the wire image, then close: the client sees a framing
            // violation (truncated body), never silently-wrong bytes.
            let bytes = response.to_bytes(close);
            let half = bytes.len() / 2;
            let _ = (&*stream).write_all(&bytes[..half]);
            let _ = (&*stream).flush();
            false
        }
        Some(thirstyflops_faults::WriteFault::Stall(delay)) => {
            // Same bytes, split around a stall: slow but byte-correct.
            let bytes = response.to_bytes(close);
            let half = (bytes.len() / 2).max(1);
            (&*stream).write_all(&bytes[..half]).is_ok() && {
                std::thread::sleep(delay);
                (&*stream).write_all(&bytes[half..]).is_ok() && (&*stream).flush().is_ok()
            }
        }
        Some(thirstyflops_faults::WriteFault::Latency(_)) => {
            unreachable!("latency faults are consumed before the write")
        }
    }
}

/// The idle phase between requests: waits up to `idle_timeout` for the
/// connection's next bytes, in short read slices so the shutdown flag is
/// observed within ~100 ms even on an idle connection. Returns `true`
/// when a request is ready to parse (bytes buffered or just arrived),
/// `false` when the connection should close (peer EOF, idle timeout,
/// shutdown, or socket error).
///
/// Drain semantics: when the stop flag is set, one last short read
/// drains any request the client already sent — a connection that was
/// queued behind a pinned worker when the drain began still gets its
/// in-flight request answered (with `Connection: close`) instead of a
/// silent disconnect. Only then does the loop refuse further requests.
fn wait_for_request(
    stream: &std::net::TcpStream,
    reader: &mut crate::http::RequestReader<&std::net::TcpStream>,
    state: &AppState,
) -> bool {
    use std::sync::atomic::Ordering;
    if reader.buffered() > 0 {
        return true; // pipelined request already in hand
    }
    let deadline = std::time::Instant::now() + state.limits.idle_timeout;
    loop {
        let stopping = state.stop.load(Ordering::SeqCst);
        let now = std::time::Instant::now();
        if now >= deadline {
            return false;
        }
        let slice = if stopping {
            // The final drain slice: long enough for bytes already in
            // the socket buffer, short enough not to hold the drain.
            std::time::Duration::from_millis(20)
        } else {
            (deadline - now).min(std::time::Duration::from_millis(100))
        };
        let _ = stream.set_read_timeout(Some(slice));
        match reader.fill_once() {
            Ok(0) => return false, // peer closed between requests
            Ok(_) => return true,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stopping {
                    return false; // draining and nothing pending: close
                }
                continue;
            }
            Err(_) => return false,
        }
    }
}

/// Maps a request-parse failure to its response; `None` when the socket
/// died (or went idle) before a request arrived — there is nobody left
/// to answer.
pub fn parse_error_response(e: crate::http::ParseError) -> Option<Response> {
    match e {
        crate::http::ParseError::Idle | crate::http::ParseError::Io(_) => None,
        crate::http::ParseError::UnexpectedEof => {
            Some(ServeError::BadRequest("connection closed mid-request".into()).to_response())
        }
        crate::http::ParseError::Timeout => Some(Response::json(
            408,
            api::to_json(&crate::error::ErrorBody {
                status: 408,
                error: "request did not arrive in full within the read timeout".into(),
            }),
        )),
        // Over-cap rejections carry Retry-After like the accept-time
        // shed 503: a within-cap retry is welcome immediately.
        crate::http::ParseError::TooLarge => Some(
            Response::json(
                431,
                api::to_json(&crate::error::ErrorBody {
                    status: 431,
                    error: format!("request head exceeds {} bytes", crate::http::MAX_HEAD_BYTES),
                }),
            )
            .with_retry_after(1),
        ),
        crate::http::ParseError::BodyTooLarge => Some(
            Response::json(
                413,
                api::to_json(&crate::error::ErrorBody {
                    status: 413,
                    error: format!("request body exceeds {} bytes", crate::http::MAX_BODY_BYTES),
                }),
            )
            .with_retry_after(1),
        ),
        crate::http::ParseError::Malformed(m) => Some(ServeError::BadRequest(m).to_response()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path_and_query: &str, state: &AppState) -> Response {
        let (path, query) = match path_and_query.split_once('?') {
            Some((p, q)) => (p, q),
            None => (path_and_query, ""),
        };
        handle(
            &Request {
                method: "GET".into(),
                path: path.into(),
                query: query.into(),
                body: String::new(),
                close: false,
                request_id: None,
            },
            state,
        )
    }

    fn post(path: &str, body: &str, state: &AppState) -> Response {
        handle(
            &Request {
                method: "POST".into(),
                path: path.into(),
                query: String::new(),
                body: body.into(),
                close: false,
                request_id: None,
            },
            state,
        )
    }

    #[test]
    fn readyz_flips_to_503_when_draining() {
        let state = AppState::default();
        let ready = get("/readyz", &state);
        assert_eq!(ready.status, 200);
        assert_eq!(&*ready.body, "{\n  \"ready\": true\n}\n");
        assert_eq!(ready.retry_after, None);
        // Readiness and liveness diverge during a drain: /healthz keeps
        // answering 200 while /readyz pulls the instance from rotation.
        state.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let draining = get("/readyz", &state);
        assert_eq!(draining.status, 503);
        assert_eq!(draining.retry_after, Some(1));
        assert!(
            draining.body.contains("\"status\": 503"),
            "{}",
            draining.body
        );
        assert_eq!(get("/healthz", &state).status, 200);
        // Unknown query parameters still fail loudly.
        assert_eq!(get("/readyz?x=1", &state).status, 400);
    }

    #[test]
    fn healthz_answers_ok() {
        let resp = get("/healthz", &AppState::default());
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"status\": \"ok\""));
        assert!(resp.body.contains("\"uptime_seconds\""));
        assert!(resp.body.contains("\"requests_total\": 0"));
    }

    #[test]
    fn healthz_reports_requests_answered_so_far() {
        let state = AppState::default();
        // The connection loop records into metrics after each response;
        // simulate two answered requests.
        state.metrics.record("rank", false, 10);
        state.metrics.record("shed", false, 5);
        let resp = get("/healthz", &state);
        assert!(resp.body.contains("\"requests_total\": 2"), "{}", resp.body);
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let state = AppState::default();
        state.metrics.record("rank", false, 10);
        let resp = get("/v1/metrics", &state);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "text/plain; version=0.0.4");
        // The per-endpoint table...
        assert!(resp
            .body
            .contains("thirstyflops_http_requests_total{endpoint=\"rank\"} 1\n"));
        // ...and the global registry's core families, even before any
        // simulation ran in this process.
        assert!(resp.body.contains("thirstyflops_simcache_hits_total"));
        assert!(resp.body.contains("thirstyflops_batch_lanes_total"));
        // Unknown query parameters still fail loudly.
        assert_eq!(get("/v1/metrics?x=1", &state).status, 400);
    }

    #[test]
    fn footprint_caches_by_normalized_key() {
        let state = AppState::default();
        let first = get("/v1/footprint/polaris?seed=2023", &state);
        assert_eq!(first.status, 200);
        // Defaulted seed normalizes onto the same key ⇒ cache hit.
        let second = get("/v1/footprint/polaris", &state);
        assert_eq!(first.body, second.body);
        let stats = state.cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn compare_normalizes_aliases_onto_one_entry() {
        let state = AppState::default();
        let canonical = get("/v1/compare?a=polaris&b=frontier&seed=7", &state);
        assert_eq!(canonical.status, 200);
        let aliased = get("/v1/compare?a=Polaris&b=Frontier&seed=7", &state);
        assert_eq!(canonical.body, aliased.body);
        let stats = state.cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1), "one entry, one hit");
        // Body matches the shared api builder byte for byte.
        assert_eq!(
            &*canonical.body,
            api::to_json(&api::compare_payload(
                thirstyflops_catalog::SystemId::Polaris,
                thirstyflops_catalog::SystemId::Frontier,
                7
            ))
        );
    }

    #[test]
    fn compare_requires_both_systems() {
        let state = AppState::default();
        assert_eq!(get("/v1/compare?a=polaris", &state).status, 400);
        assert_eq!(get("/v1/compare", &state).status, 400);
        assert_eq!(get("/v1/compare?a=polaris&b=colossus", &state).status, 404);
    }

    #[test]
    fn scenario_run_posts_evaluate_and_cache_by_canonical_spec() {
        let state = AppState::default();
        let spec = r#"{"name": "dry", "base": "polaris",
                       "overrides": {"climate": {"wue_scale": 0.5}}}"#;
        let first = post("/v1/scenarios/run", spec, &state);
        assert_eq!(first.status, 200, "{}", first.body);
        assert!(first.body.contains("\"deltas\""));
        // Same meaning, different spelling (whitespace, explicit
        // defaults) ⇒ same cache entry.
        let respelled = r#"{
            "name": "dry", "seed": 2023, "base": "Polaris",
            "overrides": {"climate": {"wue_scale": 0.5, "preset": null}}
        }"#;
        let second = post("/v1/scenarios/run", respelled, &state);
        assert_eq!(first.body, second.body);
        let stats = state.cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn scenario_post_rejects_bad_bodies_and_wrong_methods() {
        let state = AppState::default();
        assert_eq!(post("/v1/scenarios/run", "", &state).status, 400);
        assert_eq!(post("/v1/scenarios/run", "{not json", &state).status, 400);
        let unknown_key = post(
            "/v1/scenarios/run",
            r#"{"name": "x", "base": "polaris", "pue": 2}"#,
            &state,
        );
        assert_eq!(unknown_key.status, 400);
        assert!(unknown_key.body.contains("pue"));
        // Case-variant duplicate mix sources are a 400 at parse time —
        // they must never reach the post-validation evaluate.
        let dup_mix = post(
            "/v1/scenarios/run",
            r#"{"name": "x", "base": "fugaku",
                "overrides": {"grid": {"mix": {"Coal": 0.5, "coal": 0.5}}}}"#,
            &state,
        );
        assert_eq!(dup_mix.status, 400);
        assert!(dup_mix.body.contains("duplicate source"));
        // GET on a POST route is 405; POST on a GET route is 405.
        assert_eq!(get("/v1/scenarios/run", &state).status, 405);
        assert_eq!(post("/v1/rank", "{}", &state).status, 405);
    }

    #[test]
    fn scenario_sweep_posts_expand_and_evaluate() {
        let state = AppState::default();
        let sweep = r#"{"name": "s", "base": "polaris",
                        "axes": {"pue": [1.1, 1.3]}}"#;
        let resp = post("/v1/scenarios/sweep", sweep, &state);
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"scenario_count\": 2"));
        // A run spec posted to the sweep route fails loudly.
        let run_spec = r#"{"name": "x", "base": "polaris"}"#;
        assert_eq!(post("/v1/scenarios/sweep", run_spec, &state).status, 400);
        // And vice versa.
        assert_eq!(post("/v1/scenarios/run", sweep, &state).status, 400);
    }

    #[test]
    fn unknown_system_and_experiment_are_404() {
        let state = AppState::default();
        assert_eq!(get("/v1/footprint/colossus", &state).status, 404);
        assert_eq!(get("/v1/scenario/colossus", &state).status, 404);
        assert_eq!(get("/v1/experiments/fig99", &state).status, 404);
        assert_eq!(get("/nope", &state).status, 404);
    }

    #[test]
    fn parameter_typos_are_400_not_silent_defaults() {
        let state = AppState::default();
        assert_eq!(get("/v1/footprint/polaris?sed=7", &state).status, 400);
        assert_eq!(get("/v1/rank?seed=abc", &state).status, 400);
        assert_eq!(get("/v1/rank?adjusted=maybe", &state).status, 400);
        assert_eq!(get("/healthz?x=1", &state).status, 400);
        assert_eq!(
            get("/v1/compare?a=polaris&b=frontier&sed=7", &state).status,
            400
        );
    }

    #[test]
    fn non_get_is_405() {
        let resp = post("/healthz", "", &AppState::default());
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn rank_body_matches_api_builder_bytes() {
        let state = AppState::default();
        let resp = get("/v1/rank?seed=7&adjusted=true", &state);
        assert_eq!(&*resp.body, api::to_json(&api::rank_payload(true, 7)));
    }

    #[test]
    fn experiment_index_lists_ids() {
        let resp = get("/v1/experiments", &AppState::default());
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"fig01\""));
        assert!(resp.body.contains("\"table03\""));
    }

    #[test]
    fn parse_errors_map_to_their_statuses() {
        use crate::http::ParseError;
        assert!(parse_error_response(ParseError::Io("reset".into())).is_none());
        assert!(parse_error_response(ParseError::Idle).is_none());
        let eof = parse_error_response(ParseError::UnexpectedEof).unwrap();
        assert_eq!(eof.status, 400);
        let timeout = parse_error_response(ParseError::Timeout).unwrap();
        assert_eq!(timeout.status, 408);
        assert!(timeout.body.contains("\"status\": 408"));
        let too_large = parse_error_response(ParseError::TooLarge).unwrap();
        assert_eq!(too_large.status, 431);
        assert!(too_large.body.contains("\"status\": 431"));
        let body_too_large = parse_error_response(ParseError::BodyTooLarge).unwrap();
        assert_eq!(body_too_large.status, 413);
        let malformed = parse_error_response(ParseError::Malformed("bad line".into())).unwrap();
        assert_eq!(malformed.status, 400);
        assert!(malformed.body.contains("bad line"));
    }

    #[test]
    fn cache_stats_endpoint_is_not_itself_cached() {
        let state = AppState::default();
        let before = get("/v1/cache/stats", &state);
        get("/v1/systems", &state);
        let after = get("/v1/cache/stats", &state);
        assert_ne!(before.body, after.body, "stats must reflect the new miss");
    }

    #[test]
    fn traces_name_the_endpoint_and_cache_verdict() {
        let state = AppState::default();
        let req = Request {
            method: "GET".into(),
            path: "/v1/rank".into(),
            query: String::new(),
            body: String::new(),
            close: false,
            request_id: None,
        };
        let (_, cold) = handle_traced(&req, &state);
        assert_eq!(
            cold,
            Trace {
                endpoint: "rank",
                cache_hit: false
            }
        );
        let (_, warm) = handle_traced(&req, &state);
        assert_eq!(
            warm,
            Trace {
                endpoint: "rank",
                cache_hit: true
            }
        );
    }

    #[test]
    fn trace_endpoint_serves_chrome_json() {
        let state = AppState::default();
        let resp = get("/v1/trace", &state);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "application/json");
        assert!(resp.body.contains("\"traceEvents\""), "{}", resp.body);
        assert!(resp.body.contains("\"displayTimeUnit\":\"ms\""));
        // Bounded payload: `last` must parse; typos fail loudly.
        assert_eq!(get("/v1/trace?last=8", &state).status, 200);
        assert_eq!(get("/v1/trace?last=abc", &state).status, 400);
        assert_eq!(get("/v1/trace?lsat=8", &state).status, 400);
    }

    #[test]
    fn access_log_lines_are_strict_json_with_stable_keys() {
        let line = access_log_line(
            "tf-0000000000000007",
            "rank",
            200,
            123,
            456,
            true,
            None,
            &[],
        );
        assert_eq!(
            line,
            "{\"trace\":\"tf-0000000000000007\",\"endpoint\":\"rank\",\
             \"status\":200,\"bytes\":123,\"micros\":456,\"cache\":\"hit\",\
             \"shed\":null,\"faults\":[]}"
        );
        // Every line parses as strict JSON, whatever the fields hold —
        // including a hostile client-supplied trace id.
        let hostile = access_log_line(
            "x\"\\\u{1}",
            "shed",
            504,
            0,
            9,
            false,
            Some("deadline"),
            &["response_latency", "write_stall"],
        );
        let parsed: serde::Value = serde_json::from_str(&hostile).expect("strict JSON");
        let obj = match parsed {
            serde::Value::Object(pairs) => pairs,
            other => panic!("expected object, got {other:?}"),
        };
        let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            ["trace", "endpoint", "status", "bytes", "micros", "cache", "shed", "faults"]
        );
        assert_eq!(obj[0].1, serde::Value::Str("x\"\\\u{1}".into()));
        assert_eq!(obj[6].1, serde::Value::Str("deadline".into()));
    }
}
