//! Request handlers: route dispatch, cache lookups, and payload builds.
//!
//! Every cacheable endpoint follows the same shape: normalize the
//! request into a canonical cache key (defaults filled in, parameters in
//! fixed order), then `get_or_compute` the rendered body. The compute
//! closures call the same [`api`] builders the CLI's `--json` flags use,
//! which is what makes cached, uncached, and CLI output byte-identical.

use thirstyflops_catalog::SystemId;

use crate::api;
use crate::cache::ResultCache;
use crate::error::ServeError;
use crate::http::{Request, Response};
use crate::router::{route, Query, Route};

/// Shared state behind all workers: today just the result cache.
#[derive(Debug, Default)]
pub struct AppState {
    /// The sharded body cache (see `docs/SERVING.md` for the key scheme).
    pub cache: ResultCache,
}

/// Dispatches one parsed request to its handler. Never panics; every
/// failure becomes a JSON error response.
pub fn handle(req: &Request, state: &AppState) -> Response {
    match try_handle(req, state) {
        Ok(resp) => resp,
        Err(e) => e.to_response(),
    }
}

fn try_handle(req: &Request, state: &AppState) -> Result<Response, ServeError> {
    if req.method != "GET" {
        return Err(ServeError::MethodNotAllowed(format!(
            "{} not supported — the API is read-only, use GET",
            req.method
        )));
    }
    let query = Query::parse(&req.query)?;
    match route(&req.path)? {
        Route::Healthz => {
            query.expect_only(&[])?;
            Ok(Response::json(200, api::to_json(&HealthBody::ok())))
        }
        Route::CacheStats => {
            query.expect_only(&[])?;
            Ok(Response::json(
                200,
                api::to_json(&api::cache_stats_payload(state.cache.stats())),
            ))
        }
        Route::Systems => {
            query.expect_only(&[])?;
            let body = state
                .cache
                .get_or_compute("systems", || api::to_json(&api::systems_payload()));
            Ok(Response::json(200, body))
        }
        Route::Footprint(system) => {
            query.expect_only(&["seed"])?;
            let id = parse_system(&system)?;
            let seed = query.seed()?;
            let key = format!("footprint/{}?seed={seed}", id.slug());
            let body = state
                .cache
                .get_or_compute(&key, || api::to_json(&api::footprint_payload(id, seed)));
            Ok(Response::json(200, body))
        }
        Route::Rank => {
            query.expect_only(&["seed", "adjusted"])?;
            let seed = query.seed()?;
            let adjusted = query.flag("adjusted")?;
            let key = format!("rank?adjusted={adjusted}&seed={seed}");
            let body = state
                .cache
                .get_or_compute(&key, || api::to_json(&api::rank_payload(adjusted, seed)));
            Ok(Response::json(200, body))
        }
        Route::Scenario(system) => {
            query.expect_only(&["seed"])?;
            let id = parse_system(&system)?;
            let seed = query.seed()?;
            let key = format!("scenario/{}?seed={seed}", id.slug());
            let body = state
                .cache
                .get_or_compute(&key, || api::to_json(&api::scenario_payload(id, seed)));
            Ok(Response::json(200, body))
        }
        Route::ExperimentIndex => {
            query.expect_only(&[])?;
            let body = state.cache.get_or_compute("experiments", || {
                api::to_json(&api::experiment_index_payload())
            });
            Ok(Response::json(200, body))
        }
        Route::Experiment(id) => {
            query.expect_only(&[])?;
            if !thirstyflops_experiments::ids().contains(&id.as_str()) {
                return Err(ServeError::NotFound(format!(
                    "no experiment {id:?} — GET /v1/experiments lists the known ids"
                )));
            }
            let key = format!("experiments/{id}");
            let body = state.cache.get_or_compute(&key, || {
                api::to_json(&thirstyflops_experiments::select(&[id.as_str()]))
            });
            Ok(Response::json(200, body))
        }
    }
}

fn parse_system(name: &str) -> Result<SystemId, ServeError> {
    name.parse::<SystemId>().map_err(|e| {
        ServeError::NotFound(format!("{e} — GET /v1/systems lists the cataloged systems"))
    })
}

/// `GET /healthz` body.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HealthBody {
    /// Always `"ok"` while the process is serving.
    pub status: String,
}

impl HealthBody {
    /// The healthy answer.
    pub fn ok() -> HealthBody {
        HealthBody {
            status: "ok".to_string(),
        }
    }
}

/// Serves one connection end-to-end: parse, dispatch, write, close.
/// I/O errors (client hung up, timeout) are swallowed — there is nobody
/// left to answer.
pub fn serve_connection(mut stream: std::net::TcpStream, state: &AppState) {
    // A stuck client must not pin a worker forever.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(10)));
    let response = match crate::http::read_request(&mut stream) {
        Ok(req) => handle(&req, state),
        Err(e) => match parse_error_response(e) {
            Some(resp) => resp,
            None => return, // nothing arrived; likely a probe
        },
    };
    let _ = response.write_to(&mut stream);
}

/// Maps a request-parse failure to its response; `None` when the socket
/// died before a request arrived (there is nobody left to answer).
pub fn parse_error_response(e: crate::http::ParseError) -> Option<Response> {
    match e {
        crate::http::ParseError::Io(_) => None,
        crate::http::ParseError::TooLarge => Some(Response::json(
            431,
            api::to_json(&crate::error::ErrorBody {
                status: 431,
                error: format!("request head exceeds {} bytes", crate::http::MAX_HEAD_BYTES),
            }),
        )),
        crate::http::ParseError::Malformed(m) => Some(ServeError::BadRequest(m).to_response()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path_and_query: &str, state: &AppState) -> Response {
        let (path, query) = match path_and_query.split_once('?') {
            Some((p, q)) => (p, q),
            None => (path_and_query, ""),
        };
        handle(
            &Request {
                method: "GET".into(),
                path: path.into(),
                query: query.into(),
            },
            state,
        )
    }

    #[test]
    fn healthz_answers_ok() {
        let resp = get("/healthz", &AppState::default());
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"status\": \"ok\""));
    }

    #[test]
    fn footprint_caches_by_normalized_key() {
        let state = AppState::default();
        let first = get("/v1/footprint/polaris?seed=2023", &state);
        assert_eq!(first.status, 200);
        // Defaulted seed normalizes onto the same key ⇒ cache hit.
        let second = get("/v1/footprint/polaris", &state);
        assert_eq!(first.body, second.body);
        let stats = state.cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn unknown_system_and_experiment_are_404() {
        let state = AppState::default();
        assert_eq!(get("/v1/footprint/colossus", &state).status, 404);
        assert_eq!(get("/v1/scenario/colossus", &state).status, 404);
        assert_eq!(get("/v1/experiments/fig99", &state).status, 404);
        assert_eq!(get("/nope", &state).status, 404);
    }

    #[test]
    fn parameter_typos_are_400_not_silent_defaults() {
        let state = AppState::default();
        assert_eq!(get("/v1/footprint/polaris?sed=7", &state).status, 400);
        assert_eq!(get("/v1/rank?seed=abc", &state).status, 400);
        assert_eq!(get("/v1/rank?adjusted=maybe", &state).status, 400);
        assert_eq!(get("/healthz?x=1", &state).status, 400);
    }

    #[test]
    fn non_get_is_405() {
        let resp = handle(
            &Request {
                method: "POST".into(),
                path: "/healthz".into(),
                query: String::new(),
            },
            &AppState::default(),
        );
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn rank_body_matches_api_builder_bytes() {
        let state = AppState::default();
        let resp = get("/v1/rank?seed=7&adjusted=true", &state);
        assert_eq!(&*resp.body, api::to_json(&api::rank_payload(true, 7)));
    }

    #[test]
    fn experiment_index_lists_ids() {
        let resp = get("/v1/experiments", &AppState::default());
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"fig01\""));
        assert!(resp.body.contains("\"table03\""));
    }

    #[test]
    fn parse_errors_map_to_their_statuses() {
        use crate::http::ParseError;
        assert!(parse_error_response(ParseError::Io("reset".into())).is_none());
        let too_large = parse_error_response(ParseError::TooLarge).unwrap();
        assert_eq!(too_large.status, 431);
        assert!(too_large.body.contains("\"status\": 431"));
        let malformed = parse_error_response(ParseError::Malformed("bad line".into())).unwrap();
        assert_eq!(malformed.status, 400);
        assert!(malformed.body.contains("bad line"));
    }

    #[test]
    fn cache_stats_endpoint_is_not_itself_cached() {
        let state = AppState::default();
        let before = get("/v1/cache/stats", &state);
        get("/v1/systems", &state);
        let after = get("/v1/cache/stats", &state);
        assert_ne!(before.body, after.body, "stats must reflect the new miss");
    }
}
