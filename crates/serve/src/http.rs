//! A minimal HTTP/1.1 request parser and response writer over `std::io`.
//!
//! Only what a JSON API needs: request lines, `Content-Length`-framed
//! bodies (for the `POST /v1/scenarios/*` spec uploads), bounded reads
//! (8 KiB of head, 256 KiB of body), and `Connection: close` responses
//! with an explicit `Content-Length`. No keep-alive, no chunked
//! transfer, no TLS — the serving layer is an internal tool and the
//! simplicity is what keeps it deterministic and std-only.

use std::io::{Read, Write};
use std::sync::Arc;

/// Maximum bytes of request head (request line + headers) we accept.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Maximum bytes of request body we accept (scenario specs are a few
/// KiB; anything bigger is a mistake or an attack).
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token, e.g. `GET`.
    pub method: String,
    /// Decoded path component, e.g. `/v1/footprint/polaris`.
    pub path: String,
    /// Raw query string without the leading `?` (empty when absent).
    pub query: String,
    /// Request body as declared by `Content-Length` (empty when absent).
    pub body: String,
}

/// A response ready to be written: status plus JSON body.
///
/// The body is an `Arc<str>` so a cache hit serves the stored rendering
/// without copying it — the hot path costs a pointer clone, as the
/// cache module promises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (always JSON in this API).
    pub body: Arc<str>,
}

impl Response {
    /// Builds a JSON response from an owned rendering or a shared cache
    /// entry alike.
    pub fn json(status: u16, body: impl Into<Arc<str>>) -> Response {
        Response {
            status,
            body: body.into(),
        }
    }

    /// The standard reason phrase for the statuses this API emits.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            _ => "Internal Server Error",
        }
    }

    /// Serializes the full response (status line, headers, body) to a writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.body.len()
        )?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// Errors from reading or parsing a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The socket closed or errored before a full request arrived.
    Io(String),
    /// The head exceeded [`MAX_HEAD_BYTES`].
    TooLarge,
    /// The declared body exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// The request line, headers, or body framing were invalid.
    Malformed(String),
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::TooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            ParseError::BodyTooLarge => {
                write!(f, "request body exceeds {MAX_BODY_BYTES} bytes")
            }
            ParseError::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

/// Reads one request (head plus `Content-Length`-framed body) from a
/// stream and parses it.
///
/// Reads until the blank line ending the headers, then exactly
/// `Content-Length` body bytes (no length header ⇒ empty body). Fails
/// closed on oversized or malformed input.
pub fn read_request<R: Read>(stream: &mut R) -> Result<Request, ParseError> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        if find_head_end(&head).is_some() {
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge);
        }
        let n = stream
            .read(&mut buf)
            .map_err(|e| ParseError::Io(e.to_string()))?;
        if n == 0 {
            return Err(ParseError::Io("connection closed mid-request".into()));
        }
        head.extend_from_slice(&buf[..n]);
    }
    let end = find_head_end(&head).expect("loop exits only with a full head");
    let text = std::str::from_utf8(&head[..end])
        .map_err(|_| ParseError::Malformed("request head is not UTF-8".into()))?;
    let mut request = parse_head(text)?;
    let declared = content_length(text)?;
    if declared > MAX_BODY_BYTES {
        return Err(ParseError::BodyTooLarge);
    }
    if declared > 0 {
        // Body bytes that arrived with the head read, then the rest.
        let mut body = head[end..].to_vec();
        if body.len() > declared {
            body.truncate(declared);
        }
        while body.len() < declared {
            let n = stream
                .read(&mut buf)
                .map_err(|e| ParseError::Io(e.to_string()))?;
            if n == 0 {
                return Err(ParseError::Io("connection closed mid-body".into()));
            }
            let take = n.min(declared - body.len());
            body.extend_from_slice(&buf[..take]);
        }
        request.body = String::from_utf8(body)
            .map_err(|_| ParseError::Malformed("request body is not UTF-8".into()))?;
    }
    Ok(request)
}

/// The declared `Content-Length` (0 when the header is absent).
fn content_length(head: &str) -> Result<usize, ParseError> {
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            return value.trim().parse().map_err(|_| {
                ParseError::Malformed(format!("bad Content-Length {:?}", value.trim()))
            });
        }
    }
    Ok(0)
}

/// Index of the byte just past the first `\r\n\r\n` (or `None`).
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
}

/// Parses the request line out of a full (header-terminated) head.
fn parse_head(text: &str) -> Result<Request, ParseError> {
    let request_line = text
        .lines()
        .next()
        .ok_or_else(|| ParseError::Malformed("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(ParseError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path)
        .ok_or_else(|| ParseError::Malformed(format!("bad percent-escape in path {raw_path:?}")))?;
    Ok(Request {
        method: method.to_string(),
        path,
        query: raw_query.to_string(),
        body: String::new(),
    })
}

/// Decodes `%XX` escapes; returns `None` on truncated or non-hex escapes
/// or when the decoded bytes are not UTF-8.
pub fn percent_decode(s: &str) -> Option<String> {
    if !s.contains('%') {
        return Some(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hi = char::from(*bytes.get(i + 1)?).to_digit(16)?;
            let lo = char::from(*bytes.get(i + 2)?).to_digit(16)?;
            out.push((hi * 16 + lo) as u8);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(&mut raw.as_bytes())
    }

    #[test]
    fn parses_a_plain_get() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, "");
        assert_eq!(req.body, "");
    }

    #[test]
    fn reads_a_content_length_framed_body() {
        let req = parse(
            "POST /v1/scenarios/run HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, "hello world");
        // Case-insensitive header name; extra bytes past the declared
        // length are ignored.
        let req = parse("POST /x HTTP/1.1\r\ncontent-length: 2\r\n\r\nabXTRA").unwrap();
        assert_eq!(req.body, "ab");
    }

    #[test]
    fn rejects_bad_bodies() {
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ParseError::Io(_))
        ));
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(&huge), Err(ParseError::BodyTooLarge));
    }

    #[test]
    fn splits_query_and_decodes_path() {
        let req = parse("GET /v1/footprint/el%2Dcapitan?seed=7&x=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/v1/footprint/el-capitan");
        assert_eq!(req.query, "seed=7&x=1");
    }

    #[test]
    fn rejects_bad_request_lines() {
        assert!(matches!(
            parse("GARBAGE\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x SPDY/3\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /%zz HTTP/1.1\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_heads() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(2 * MAX_HEAD_BYTES));
        assert_eq!(parse(&raw), Err(ParseError::TooLarge));
    }

    #[test]
    fn rejects_truncated_streams() {
        assert!(matches!(
            parse("GET /healthz HTTP/1.1\r\n"),
            Err(ParseError::Io(_))
        ));
    }

    #[test]
    fn response_wire_format_is_exact() {
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}"
        );
    }

    #[test]
    fn percent_decode_handles_escapes() {
        assert_eq!(percent_decode("a%20b").as_deref(), Some("a b"));
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        assert_eq!(percent_decode("bad%2"), None);
        assert_eq!(percent_decode("bad%zz"), None);
    }
}
