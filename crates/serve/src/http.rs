//! A minimal HTTP/1.1 request parser and response writer over `std::io`.
//!
//! Only what a JSON API needs: request lines, `Content-Length`-framed
//! bodies (for the `POST /v1/scenarios/*` spec uploads), bounded reads
//! (8 KiB of head, 256 KiB of body), and persistent connections.
//! [`RequestReader`] carries over-read bytes between requests, so
//! pipelined requests on one keep-alive connection parse correctly;
//! `Connection: close` / `keep-alive` request headers are honored and
//! echoed (HTTP/1.0 defaults to close, HTTP/1.1 to keep-alive). No
//! chunked transfer, no TLS — the serving layer is an internal tool and
//! the simplicity is what keeps it deterministic and std-only.

use std::io::{ErrorKind, Read, Write};
use std::sync::Arc;

/// Maximum bytes of request head (request line + headers) we accept.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Maximum bytes of request body we accept (scenario specs are a few
/// KiB; anything bigger is a mistake or an attack).
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token, e.g. `GET`.
    pub method: String,
    /// Decoded path component, e.g. `/v1/footprint/polaris`.
    pub path: String,
    /// Raw query string without the leading `?` (empty when absent).
    pub query: String,
    /// Request body as declared by `Content-Length` (empty when absent).
    pub body: String,
    /// True when the client asked for the connection to close after this
    /// response: an explicit `Connection: close`, or HTTP/1.0 without
    /// `Connection: keep-alive`.
    pub close: bool,
    /// The client's `X-Request-Id` header, if sent. The serving loop
    /// echoes it (or a generated id) on the response so a client can
    /// correlate byte-verify failures with `/v1/trace` and the access
    /// log.
    pub request_id: Option<String>,
}

/// A response ready to be written: status, content type, and body.
///
/// The body is an `Arc<str>` so a cache hit serves the stored rendering
/// without copying it — the hot path costs a pointer clone, as the
/// cache module promises. Everything in this API is JSON except
/// `GET /v1/metrics`, which serves Prometheus text exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Arc<str>,
    /// Optional `Retry-After` header, whole seconds. Shed 503s, deadline
    /// 504s, and over-cap 413/431 rejections carry it so well-behaved
    /// clients (loadgen's retry policy among them) know when to retry.
    pub retry_after: Option<u32>,
    /// Optional `X-Request-Id` echo. `None` (handler-level responses,
    /// cached renderings) omits the header; the serving loop sets it
    /// per request just before writing.
    pub request_id: Option<String>,
}

impl Response {
    /// Builds a JSON response from an owned rendering or a shared cache
    /// entry alike.
    pub fn json(status: u16, body: impl Into<Arc<str>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            retry_after: None,
            request_id: None,
        }
    }

    /// Builds a Prometheus text-exposition response (`/v1/metrics`).
    pub fn text(status: u16, body: impl Into<Arc<str>>) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into(),
            retry_after: None,
            request_id: None,
        }
    }

    /// Adds a `Retry-After: seconds` header to the response.
    pub fn with_retry_after(mut self, seconds: u32) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// Sets the `X-Request-Id` echo header.
    pub fn with_request_id(mut self, id: impl Into<String>) -> Response {
        self.request_id = Some(id.into());
        self
    }

    /// The standard reason phrase for the statuses this API emits.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Internal Server Error",
        }
    }

    /// The exact wire image (status line, headers, body) this response
    /// serializes to. `close` selects the `Connection:` header; the
    /// caller must actually close the stream afterwards when it says so.
    /// The fault-injection write paths use this directly so truncated /
    /// stalled writes operate on the same bytes a clean write emits.
    pub fn to_bytes(&self, close: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(160 + self.body.len());
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
        );
        if let Some(id) = &self.request_id {
            let _ = write!(out, "X-Request-Id: {id}\r\n");
        }
        if let Some(seconds) = self.retry_after {
            let _ = write!(out, "Retry-After: {seconds}\r\n");
        }
        let _ = write!(
            out,
            "Connection: {}\r\n\r\n",
            if close { "close" } else { "keep-alive" }
        );
        out.extend_from_slice(self.body.as_bytes());
        out
    }

    /// Serializes the full response to a writer as one buffered write:
    /// emitting head and body as separate small segments stalls
    /// keep-alive connections behind the Nagle / delayed-ACK
    /// interaction (~40 ms per response).
    pub fn write_to<W: Write>(&self, w: &mut W, close: bool) -> std::io::Result<()> {
        w.write_all(&self.to_bytes(close))?;
        w.flush()
    }
}

/// Errors from reading or parsing a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed (or went silent past the idle window) *between*
    /// requests, with no buffered bytes — the normal end of a keep-alive
    /// connection, not a protocol error. No response is owed.
    Idle,
    /// The socket errored mid-request.
    Io(String),
    /// The peer closed after a request had started arriving.
    UnexpectedEof,
    /// The read timeout elapsed mid-request (slowloris guard).
    Timeout,
    /// The head exceeded [`MAX_HEAD_BYTES`].
    TooLarge,
    /// The declared body exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// The request line, headers, or body framing were invalid.
    Malformed(String),
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseError::Idle => write!(f, "connection idle"),
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::UnexpectedEof => write!(f, "connection closed mid-request"),
            ParseError::Timeout => write!(f, "read timed out mid-request"),
            ParseError::TooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            ParseError::BodyTooLarge => {
                write!(f, "request body exceeds {MAX_BODY_BYTES} bytes")
            }
            ParseError::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

/// A buffered request parser over one connection.
///
/// Keep-alive needs carry-over: one `read` can return the tail of the
/// current request *plus* the head of the next (pipelining). The reader
/// owns that buffer, so [`read_request`](RequestReader::read_request)
/// can be called repeatedly and each call consumes exactly one request.
#[derive(Debug)]
pub struct RequestReader<R> {
    stream: R,
    buf: Vec<u8>,
}

impl<R: Read> RequestReader<R> {
    /// Wraps a stream. `&TcpStream` implements `Read`, so the caller can
    /// keep the owned stream for `set_read_timeout` and writing.
    pub fn new(stream: R) -> RequestReader<R> {
        RequestReader {
            stream,
            buf: Vec::with_capacity(512),
        }
    }

    /// Bytes buffered but not yet consumed (pipelined data).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// One raw read appended to the carry-over buffer. `Ok(0)` means the
    /// peer closed; timeout errors pass through as `WouldBlock` /
    /// `TimedOut`. The connection loop uses this to wait for the first
    /// byte in short slices so it can poll the shutdown flag.
    pub fn fill_once(&mut self) -> std::io::Result<usize> {
        let mut chunk = [0u8; 512];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// One read, with EOF/timeout classified against the buffer state:
    /// nothing buffered means the connection ended *between* requests
    /// ([`ParseError::Idle`]); anything buffered means a request was cut
    /// off mid-flight.
    fn fill_more(&mut self) -> Result<(), ParseError> {
        match self.fill_once() {
            Ok(0) if self.buf.is_empty() => Err(ParseError::Idle),
            Ok(0) => Err(ParseError::UnexpectedEof),
            Ok(_) => Ok(()),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if self.buf.is_empty() {
                    Err(ParseError::Idle)
                } else {
                    Err(ParseError::Timeout)
                }
            }
            Err(e) => Err(ParseError::Io(e.to_string())),
        }
    }

    /// Reads and parses the next request (head plus `Content-Length`-
    /// framed body), leaving any pipelined bytes after it buffered for
    /// the next call. Fails closed on oversized or malformed input.
    pub fn read_request(&mut self) -> Result<Request, ParseError> {
        loop {
            if find_head_end(&self.buf).is_some() {
                break;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(ParseError::TooLarge);
            }
            self.fill_more()?;
        }
        let end = find_head_end(&self.buf).expect("loop exits only with a full head");
        let text = std::str::from_utf8(&self.buf[..end])
            .map_err(|_| ParseError::Malformed("request head is not UTF-8".into()))?;
        let mut request = parse_head(text)?;
        let declared = content_length(text)?;
        if declared > MAX_BODY_BYTES {
            return Err(ParseError::BodyTooLarge);
        }
        while self.buf.len() < end + declared {
            self.fill_more()?;
        }
        if declared > 0 {
            request.body = String::from_utf8(self.buf[end..end + declared].to_vec())
                .map_err(|_| ParseError::Malformed("request body is not UTF-8".into()))?;
        }
        self.buf.drain(..end + declared);
        Ok(request)
    }
}

/// Reads one request from a stream — the one-shot entry point, shared by
/// unit tests and anything that doesn't need keep-alive. Equivalent to
/// one [`RequestReader::read_request`] call on a fresh reader.
pub fn read_request<R: Read>(stream: &mut R) -> Result<Request, ParseError> {
    RequestReader::new(stream).read_request()
}

/// The first matching header value (trimmed), or `None`.
fn header_value<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    for line in head.lines().skip(1) {
        let Some((n, v)) = line.split_once(':') else {
            continue;
        };
        if n.trim().eq_ignore_ascii_case(name) {
            return Some(v.trim());
        }
    }
    None
}

/// The declared `Content-Length` (0 when the header is absent).
fn content_length(head: &str) -> Result<usize, ParseError> {
    match header_value(head, "content-length") {
        Some(value) => value
            .parse()
            .map_err(|_| ParseError::Malformed(format!("bad Content-Length {value:?}"))),
        None => Ok(0),
    }
}

/// Index of the byte just past the first `\r\n\r\n` (or `None`).
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
}

/// Parses the request line and connection semantics out of a full
/// (header-terminated) head.
fn parse_head(text: &str) -> Result<Request, ParseError> {
    let request_line = text
        .lines()
        .next()
        .ok_or_else(|| ParseError::Malformed("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(ParseError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    // HTTP/1.0 closes by default; 1.1 persists. An explicit Connection
    // header (comma-separated token list, case-insensitive) overrides.
    let mut close = version == "HTTP/1.0";
    if let Some(value) = header_value(text, "connection") {
        for token in value.split(',') {
            let token = token.trim();
            if token.eq_ignore_ascii_case("close") {
                close = true;
            } else if token.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        }
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path)
        .ok_or_else(|| ParseError::Malformed(format!("bad percent-escape in path {raw_path:?}")))?;
    Ok(Request {
        method: method.to_string(),
        path,
        query: raw_query.to_string(),
        body: String::new(),
        close,
        request_id: header_value(text, "x-request-id").map(str::to_string),
    })
}

/// Decodes `%XX` escapes; returns `None` on truncated or non-hex escapes
/// or when the decoded bytes are not UTF-8.
pub fn percent_decode(s: &str) -> Option<String> {
    if !s.contains('%') {
        return Some(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hi = char::from(*bytes.get(i + 1)?).to_digit(16)?;
            let lo = char::from(*bytes.get(i + 2)?).to_digit(16)?;
            out.push((hi * 16 + lo) as u8);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(&mut raw.as_bytes())
    }

    #[test]
    fn parses_a_plain_get() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, "");
        assert_eq!(req.body, "");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_header_controls_close() {
        let req = parse("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.close);
        let req = parse("GET /x HTTP/1.1\r\nconnection:  Keep-Alive \r\n\r\n").unwrap();
        assert!(!req.close, "token match is case-insensitive and trimmed");
        let req = parse("GET /x HTTP/1.0\r\n\r\n").unwrap();
        assert!(req.close, "HTTP/1.0 defaults to close");
        let req = parse("GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!req.close, "explicit keep-alive overrides the 1.0 default");
    }

    #[test]
    fn reads_a_content_length_framed_body() {
        let req = parse(
            "POST /v1/scenarios/run HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, "hello world");
        // Case-insensitive header name; extra bytes past the declared
        // length stay buffered for the next request (pipelining).
        let req = parse("POST /x HTTP/1.1\r\ncontent-length: 2\r\n\r\nabXTRA").unwrap();
        assert_eq!(req.body, "ab");
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let wire = "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut stream = wire.as_bytes();
        let mut reader = RequestReader::new(&mut stream);
        let a = reader.read_request().unwrap();
        assert_eq!((a.path.as_str(), a.close), ("/a", false));
        assert!(reader.buffered() > 0, "the next request is carried over");
        let b = reader.read_request().unwrap();
        assert_eq!((b.path.as_str(), b.body.as_str()), ("/b", "hi"));
        let c = reader.read_request().unwrap();
        assert_eq!((c.path.as_str(), c.close), ("/c", true));
        assert_eq!(reader.read_request(), Err(ParseError::Idle));
    }

    #[test]
    fn rejects_bad_bodies() {
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ParseError::UnexpectedEof)
        );
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(&huge), Err(ParseError::BodyTooLarge));
    }

    #[test]
    fn splits_query_and_decodes_path() {
        let req = parse("GET /v1/footprint/el%2Dcapitan?seed=7&x=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/v1/footprint/el-capitan");
        assert_eq!(req.query, "seed=7&x=1");
    }

    #[test]
    fn rejects_bad_request_lines() {
        assert!(matches!(
            parse("GARBAGE\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x SPDY/3\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /%zz HTTP/1.1\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_heads() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(2 * MAX_HEAD_BYTES));
        assert_eq!(parse(&raw), Err(ParseError::TooLarge));
    }

    #[test]
    fn truncation_is_eof_and_silence_is_idle() {
        assert_eq!(
            parse("GET /healthz HTTP/1.1\r\n"),
            Err(ParseError::UnexpectedEof)
        );
        assert_eq!(parse(""), Err(ParseError::Idle));
    }

    #[test]
    fn response_wire_format_is_exact() {
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}"
        );
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\n{}"
        );
        let mut out = Vec::new();
        Response::text(200, "m 1\n")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: 4\r\nConnection: close\r\n\r\nm 1\n"
        );
        // Retry-After slots between Content-Length and Connection.
        let bytes = Response::json(503, "{}").with_retry_after(2).to_bytes(true);
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: 2\r\nRetry-After: 2\r\nConnection: close\r\n\r\n{}"
        );
        // X-Request-Id slots between Content-Length and Retry-After.
        let bytes = Response::json(503, "{}")
            .with_request_id("lg-7")
            .with_retry_after(2)
            .to_bytes(true);
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: 2\r\nX-Request-Id: lg-7\r\nRetry-After: 2\r\nConnection: close\r\n\r\n{}"
        );
    }

    #[test]
    fn request_id_header_is_captured() {
        let req = parse("GET /healthz HTTP/1.1\r\nX-Request-Id:  abc-123 \r\n\r\n").unwrap();
        assert_eq!(req.request_id.as_deref(), Some("abc-123"));
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.request_id, None);
    }

    #[test]
    fn hardened_statuses_have_exact_reasons() {
        assert_eq!(Response::json(500, "{}").reason(), "Internal Server Error");
        assert_eq!(Response::json(504, "{}").reason(), "Gateway Timeout");
        assert_eq!(Response::json(503, "{}").reason(), "Service Unavailable");
    }

    #[test]
    fn percent_decode_handles_escapes() {
        assert_eq!(percent_decode("a%20b").as_deref(), Some("a b"));
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        assert_eq!(percent_decode("bad%2"), None);
        assert_eq!(percent_decode("bad%zz"), None);
    }
}
