//! Error taxonomy for the serving layer and its JSON rendering.
//!
//! Every failure a handler can produce maps onto one HTTP status plus a
//! small JSON body, so clients never have to parse free-text errors. The
//! bodies go through the same canonical renderer
//! ([`crate::api::to_json`]) as successful responses, which keeps error
//! output byte-deterministic too.

use crate::api;
use crate::http::Response;

/// A request that could not be answered with a `200 OK`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The path or a path parameter named something that does not exist.
    NotFound(String),
    /// A query parameter or the request itself was malformed.
    BadRequest(String),
    /// The method is not `GET` (the API is read-only).
    MethodNotAllowed(String),
}

/// The JSON shape of every error response.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ErrorBody {
    /// Numeric HTTP status, duplicated into the body for log scraping.
    pub status: u16,
    /// Human-readable description of what went wrong.
    pub error: String,
}

impl ServeError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::NotFound(_) => 404,
            ServeError::BadRequest(_) => 400,
            ServeError::MethodNotAllowed(_) => 405,
        }
    }

    /// The error message carried in the JSON body.
    pub fn message(&self) -> &str {
        match self {
            ServeError::NotFound(m)
            | ServeError::BadRequest(m)
            | ServeError::MethodNotAllowed(m) => m,
        }
    }

    /// Renders the error as a full HTTP response with a JSON body.
    pub fn to_response(&self) -> Response {
        let body = ErrorBody {
            status: self.status(),
            error: self.message().to_string(),
        };
        Response::json(self.status(), api::to_json(&body))
    }
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} {}", self.status(), self.message())
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_match_variants() {
        assert_eq!(ServeError::NotFound("x".into()).status(), 404);
        assert_eq!(ServeError::BadRequest("x".into()).status(), 400);
        assert_eq!(ServeError::MethodNotAllowed("x".into()).status(), 405);
    }

    #[test]
    fn error_body_is_json() {
        let resp = ServeError::BadRequest("bad seed".into()).to_response();
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("\"error\": \"bad seed\""));
        assert!(resp.body.contains("\"status\": 400"));
    }
}
