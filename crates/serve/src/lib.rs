//! `thirstyflops_serve` — a std-only HTTP/JSON serving layer with a
//! deterministic result cache.
//!
//! The first step toward the ROADMAP's heavy-traffic north star: expose
//! the footprint/rank/scenario/experiment queries as a JSON API without
//! pulling in any async runtime or HTTP dependency. The stack is five
//! small layers:
//!
//! * [`http`] — minimal HTTP/1.1 request parsing and response writing;
//! * [`router`] — path → endpoint resolution and query parsing;
//! * [`api`] — the typed payloads, shared with the CLI's `--json` flags
//!   so server and CLI output are byte-identical;
//! * [`cache`] — a sharded, bounded (LRU + optional TTL)
//!   `(canonical request) → (rendered body)` cache that lets repeated
//!   queries skip `SystemYear::simulate` entirely (cold queries still
//!   reuse sub-simulations via `core::simcache`);
//! * [`pool`] — a fixed worker pool in the spirit of the workspace's
//!   rayon shim executor.
//!
//! Connections are HTTP/1.1 keep-alive: each worker runs a
//! per-connection request loop (`handlers::serve_connection`) until the
//! client sends `Connection: close`, goes idle past the limit, or the
//! server shuts down. A keep-alive connection pins its worker for its
//! lifetime, so the accept loop enforces [`ServerConfig::max_connections`]
//! and sheds anything beyond it with a well-formed JSON 503 instead of
//! letting it queue unanswered.
//!
//! Determinism contract (see `docs/SERVING.md` and `docs/CONCURRENCY.md`):
//! handlers are pure functions of the canonical request, so identical
//! requests produce byte-identical bodies at any worker count and over
//! any connection discipline (keep-alive, pipelined, or one-shot),
//! cached or not. That property — not latency — is what the 1-CPU CI
//! container validates.
//!
//! ```no_run
//! use thirstyflops_serve::{Server, ServerConfig};
//!
//! let server = Server::bind(&ServerConfig {
//!     addr: "127.0.0.1:0".to_string(), // port 0: ephemeral, for tests
//!     workers: 4,
//!     ..ServerConfig::default()
//! })
//! .expect("bind");
//! println!("listening on http://{}", server.local_addr());
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod error;
pub mod handlers;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod router;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::JoinHandle;

pub use cache::{CacheStats, ResultCache};
pub use error::ServeError;
pub use handlers::{AppState, Limits};

/// How to run the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Bind address, `HOST:PORT`. Port 0 asks the OS for an ephemeral
    /// port (read it back via [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads answering requests (clamped to ≥ 1).
    pub workers: usize,
    /// Body-cache entry bound (`serve --cache-entries N`; `0` =
    /// unbounded). Overflow evicts least-recently-used bodies.
    pub cache_entries: usize,
    /// Optional body-cache TTL (`serve --cache-ttl SECS`; `None` =
    /// entries never expire).
    pub cache_ttl: Option<std::time::Duration>,
    /// `serve --log`: one stderr line per request (method, path,
    /// status, bytes, µs, cache hit/miss).
    pub log_requests: bool,
    /// `serve --log-json`: one structured JSON access-log object per
    /// request on stderr (trace id, endpoint family, status, bytes, µs,
    /// cache verdict, shed reason, injected-fault sites — see
    /// [`handlers::access_log_line`]).
    pub log_json: bool,
    /// Concurrent-connection limit (`serve --max-connections N`; `0` =
    /// unlimited). Connections beyond it are shed with a JSON 503 at
    /// accept time instead of queueing unanswered behind pinned workers.
    pub max_connections: usize,
    /// Idle/read timeouts applied to every connection.
    pub limits: Limits,
}

impl Default for ServerConfig {
    /// Loopback on the project's default port with one worker per
    /// available CPU, a 4096-entry, never-expiring body cache, request
    /// logging off, a 256-connection limit, and the default 5 s idle /
    /// 10 s read timeouts.
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7979".to_string(),
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            cache_entries: 4096,
            cache_ttl: None,
            log_requests: false,
            log_json: false,
            max_connections: 256,
            limits: Limits::default(),
        }
    }
}

/// A running server: an accept thread feeding a fixed worker pool.
///
/// Shutdown semantics: [`shutdown`](Server::shutdown) flips a flag,
/// nudges the blocking `accept` with a loopback connection, stops
/// accepting, lets the workers drain every already-accepted connection,
/// and joins all threads — no connection is abandoned mid-response.
/// [`drain`](Server::drain) is the bounded variant (the SIGTERM-style
/// lifecycle, `docs/ROBUSTNESS.md`): same sequence, but gives up after
/// a timeout instead of waiting forever. Dropping a `Server` without
/// calling either leaves the threads serving until the process exits
/// (what the CLI's `serve` command wants).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<AppState>,
    active: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
    pool: Option<pool::WorkerPool>,
}

/// Decrements the live-connection counter when the connection's job is
/// dropped — including when the handler panics, since the job is moved
/// into the worker's `catch_unwind` scope.
#[derive(Debug)]
struct ConnPermit(Arc<AtomicUsize>);

impl Drop for ConnPermit {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One accepted connection queued for a worker: the stream plus the
/// permit that holds its slot under the connection limit.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    _permit: ConnPermit,
}

impl Server {
    /// Binds the listener, spawns the worker pool and the accept thread,
    /// and starts serving immediately. Equivalent to
    /// [`bind_with_faults`](Server::bind_with_faults) with the
    /// process-globally installed fault injector (if any) — a server
    /// bound with no plan installed pays nothing at the fault sites.
    pub fn bind(config: &ServerConfig) -> std::io::Result<Server> {
        Server::bind_with_faults(config, thirstyflops_faults::global())
    }

    /// [`bind`](Server::bind), with an explicit per-instance fault
    /// injector (tests use this to chaos one server without touching
    /// the process-global slot).
    pub fn bind_with_faults(
        config: &ServerConfig,
        faults: Option<Arc<thirstyflops_faults::FaultInjector>>,
    ) -> std::io::Result<Server> {
        if let Some(injector) = &faults {
            if injector.plan().rates[thirstyflops_faults::SITE_HANDLER_PANIC] > 0.0 {
                thirstyflops_faults::silence_injected_panics();
            }
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(AppState {
            cache: cache::ResultCache::with_limits(8, config.cache_entries, config.cache_ttl),
            metrics: metrics::Metrics::default(),
            log_requests: config.log_requests,
            log_json: config.log_json,
            ordinal: std::sync::atomic::AtomicU64::new(0),
            limits: config.limits,
            stop: std::sync::atomic::AtomicBool::new(false),
            started: std::time::Instant::now(),
            faults,
        });
        let active = Arc::new(AtomicUsize::new(0));
        let worker_state = Arc::clone(&state);
        let (pool, sender) = pool::WorkerPool::spawn(config.workers, move |conn: Conn| {
            handlers::serve_connection(conn.stream, &worker_state);
        });
        let accept_state = Arc::clone(&state);
        let accept_active = Arc::clone(&active);
        let max_connections = config.max_connections;
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || {
                accept_loop(
                    &listener,
                    &sender,
                    &accept_state,
                    &accept_active,
                    max_connections,
                )
            })?;
        Ok(Server {
            addr,
            state,
            active,
            accept_thread: Some(accept_thread),
            pool: Some(pool),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.as_ref().map_or(0, pool::WorkerPool::len)
    }

    /// Snapshot of the result-cache counters (also served at
    /// `GET /v1/cache/stats`).
    pub fn cache_stats(&self) -> CacheStats {
        self.state.cache.stats()
    }

    /// Stops accepting, drains in-flight connections (each keep-alive
    /// loop answers its request in flight with `Connection: close` and
    /// exits; idle connections close within one ~100 ms poll slice),
    /// joins all threads.
    pub fn shutdown(mut self) {
        self.begin_stop();
        // The accept thread owned the queue sender; with it gone the
        // workers drain the queue and exit.
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }

    /// Graceful drain, bounded: stops accepting (late connects are
    /// refused — the listener is closed, not left queueing), answers
    /// every in-flight request with `Connection: close`, and waits up to
    /// `timeout` for the live-connection count to hit zero. Returns
    /// `true` when everything drained in time (all threads joined) and
    /// `false` on timeout (worker threads are detached and die with the
    /// process; their responses may still complete). This is the
    /// SIGTERM-style lifecycle — see `docs/ROBUSTNESS.md`.
    pub fn drain(mut self, timeout: std::time::Duration) -> bool {
        self.begin_stop();
        let deadline = std::time::Instant::now() + timeout;
        while self.active.load(Ordering::SeqCst) > 0 {
            if std::time::Instant::now() >= deadline {
                // Detach: dropping the pool abandons the join handles
                // without blocking on stuck connections.
                self.pool.take();
                return false;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
        true
    }

    /// Flips the stop flag, unblocks `accept`, and joins the accept
    /// thread — after this returns, the listener is closed and late
    /// connects get a clean refusal.
    fn begin_stop(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call; the accept loop sees the flag before
        // queueing this nudge connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Blocks forever serving requests (the CLI foreground mode).
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    sender: &Sender<Conn>,
    state: &AppState,
    active: &Arc<AtomicUsize>,
    max_connections: usize,
) {
    // The 503 body is constant; render it once and share the Arc.
    let shed_response = http::Response::json(
        503,
        api::to_json(&error::ErrorBody {
            status: 503,
            error: format!(
                "server is at its connection limit ({max_connections}); retry shortly \
                 or raise serve --max-connections"
            ),
        }),
    )
    .with_retry_after(1);
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if state.stop.load(Ordering::SeqCst) {
                    // The shutdown nudge (or a late client): drop it and
                    // stop accepting.
                    drop(stream);
                    return;
                }
                if let Some(faults) = &state.faults {
                    if faults.decide_accept_drop() {
                        // Injected accept-time drop: the client sees a
                        // connection reset with zero response bytes.
                        drop(stream);
                        continue;
                    }
                }
                // Small request/response exchanges must not sit behind
                // Nagle's algorithm on a persistent connection.
                let _ = stream.set_nodelay(true);
                if max_connections > 0 && active.load(Ordering::SeqCst) >= max_connections {
                    // Shed responses never reach a worker's connection
                    // loop, so count them here or load-shedding stays
                    // invisible in `/v1/cache/stats` and `/v1/metrics`.
                    let started = std::time::Instant::now();
                    shed(stream, &shed_response);
                    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                    state.metrics.record("shed", false, micros);
                    state.metrics.record_shed("connection_limit");
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let conn = Conn {
                    stream,
                    _permit: ConnPermit(Arc::clone(active)),
                };
                if sender.send(conn).is_err() {
                    return; // workers are gone; nothing can be served
                }
            }
            Err(_) => {
                if state.stop.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept errors (EMFILE, aborted handshake):
                // keep serving.
            }
        }
    }
}

/// Answers an over-limit connection with the prebuilt JSON 503 and
/// closes it. Runs on the accept thread, so the write gets a short
/// timeout — a slow or hostile client must not stall accepting.
fn shed(stream: TcpStream, response: &http::Response) {
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(1)));
    let _ = response.write_to(&mut (&stream), true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        // One-shot client: ask for close so read_to_string terminates.
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn binds_port_zero_serves_and_shuts_down() {
        let server = Server::bind(&ServerConfig {
            workers: 2,
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        })
        .unwrap();
        assert_ne!(server.local_addr().port(), 0);
        assert_eq!(server.workers(), 2);
        let response = get(server.local_addr(), "/healthz");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("\"status\": \"ok\""));
        let addr = server.local_addr();
        server.shutdown();
        // After shutdown nothing is listening any more.
        assert!(TcpStream::connect(addr).is_err() || get_is_dead(addr));
    }

    fn get_is_dead(addr: SocketAddr) -> bool {
        // A connect may still succeed briefly on some kernels (backlog),
        // but no response bytes can ever arrive.
        let mut stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => return true,
        };
        let _ = write!(stream, "GET /healthz HTTP/1.1\r\n\r\n");
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
        let mut buf = [0u8; 1];
        !matches!(stream.read(&mut buf), Ok(n) if n > 0)
    }

    #[test]
    fn default_config_is_sane() {
        let config = ServerConfig::default();
        assert!(config.workers >= 1);
        assert!(config.addr.starts_with("127.0.0.1:"));
    }

    #[test]
    fn cache_stats_visible_in_process() {
        let server = Server::bind(&ServerConfig {
            workers: 1,
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        })
        .unwrap();
        assert_eq!(server.cache_stats().misses, 0);
        get(server.local_addr(), "/v1/systems");
        get(server.local_addr(), "/v1/systems");
        let stats = server.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        server.shutdown();
    }
}
