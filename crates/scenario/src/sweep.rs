//! Cartesian sweeps: an `"axes"` block expands one spec into the cross
//! product of its axis values, evaluated through the batched K-lane
//! kernel (`core::batch`) in one rayon fan-out.
//!
//! A sweep file is a scenario spec plus `"axes": {"<override path>":
//! [v1, v2, ...], ...}`. Each combination produces a full
//! [`ScenarioSpec`] — the axis value is written into the (canonical)
//! overrides tree at its path, and the result goes through the same
//! strict validation as a hand-written spec. Expansion order is
//! deterministic: axes iterate in file order, the first axis slowest,
//! so row order never depends on thread count.
//!
//! Plain sweeps keep every row and are capped at [`MAX_SCENARIOS`]
//! cells. A sweep with `"top_n"` streams instead: rows flow through a
//! bounded [top-N aggregator](thirstyflops_core::batch::TopN) ranked on
//! `"rank_by"` (ascending — smaller is better), which lifts the ceiling
//! to [`MAX_SCENARIOS_TOP_N`] without ever materializing the full row
//! set.

use serde::Serialize as _;
use serde::Value;

use crate::engine::{ScenarioDeltas, ScenarioMetrics};
use crate::spec::{fingerprint_of, Overrides, ScenarioError, ScenarioSpec};

/// Override paths an axis may set (the settable leaves of the override
/// schema — anything else is a hard error).
pub const AXIS_PATHS: [&str; 15] = [
    "climate.preset",
    "climate.wue_scale",
    "grid.region",
    "grid.mix",
    "grid.mix_delta",
    "pue",
    "nodes",
    "wsi.site",
    "wsi.field",
    "reclaimed.fraction",
    "reclaimed.wsi",
    "reclaimed.usd_per_kl",
    "water_price.base_usd_per_kl",
    "water_price.monthly_multiplier",
    "fleet_upgrade.lifetime_years",
];

/// The expansion ceiling for plain (row-materializing) sweeps: at most
/// this many scenarios (guards against accidental combinatorial bombs).
pub const MAX_SCENARIOS: usize = 4096;

/// The expansion ceiling for streaming `top_n` sweeps — rows flow
/// through a bounded top-N heap instead of a materialized vector, so
/// the cap is memory-safe at six orders of magnitude.
pub const MAX_SCENARIOS_TOP_N: usize = 1_048_576;

/// The metrics a `rank_by` field may name. Ranking is ascending —
/// smaller is better — matching the siting question every metric here
/// answers (less water, less carbon, lower bill, less energy).
pub const RANK_METRICS: [&str; 7] = [
    "operational_water_l",
    "scarcity_adjusted_water_l",
    "direct_water_l",
    "indirect_water_l",
    "carbon_kg",
    "water_cost_usd",
    "energy_kwh",
];

/// The rank metric used when `top_n` is given without `rank_by`.
pub const DEFAULT_RANK_METRIC: &str = "operational_water_l";

/// Reads the named rank metric off evaluated scenario metrics.
///
/// # Panics
/// Panics on a metric outside [`RANK_METRICS`] — callers validate the
/// name at parse time ([`SweepSpec::from_json`]) and again in
/// [`evaluate_sweep`] for code-built sweeps.
pub(crate) fn rank_key(m: &ScenarioMetrics, metric: &str) -> f64 {
    match metric {
        "operational_water_l" => m.operational_water_l,
        "scarcity_adjusted_water_l" => m.scarcity_adjusted_water_l,
        "direct_water_l" => m.direct_water_l,
        "indirect_water_l" => m.indirect_water_l,
        "carbon_kg" => m.carbon_kg,
        "water_cost_usd" => m.water_cost_usd,
        "energy_kwh" => m.energy_kwh,
        other => unreachable!("rank metric {other:?} is rejected before evaluation"),
    }
}

/// One sweep axis: an override path and the values it cycles through.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Axis {
    /// Dotted override path, e.g. `"climate.preset"`.
    pub path: String,
    /// The values, tried in file order.
    pub values: Vec<Value>,
}

/// A sweep specification: common spec fields plus the axes.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SweepSpec {
    /// Sweep name (rows are named `name[axis=value,...]`).
    pub name: String,
    /// Optional free-text description.
    pub description: Option<String>,
    /// Canonical slug of the base system.
    pub base: String,
    /// Telemetry seed.
    pub seed: u64,
    /// Overrides common to every combination (axes write on top).
    pub overrides: Overrides,
    /// The axes, file order.
    pub axes: Vec<Axis>,
    /// Streaming mode: keep only the best N rows (by `rank_by`) and
    /// raise the expansion ceiling to [`MAX_SCENARIOS_TOP_N`].
    pub top_n: Option<u64>,
    /// The ranking metric for `top_n` (one of [`RANK_METRICS`];
    /// ascending, defaults to [`DEFAULT_RANK_METRIC`]).
    pub rank_by: Option<String>,
}

/// One row of a sweep report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepRow {
    /// Expanded scenario name (`name[axis=value,...]`).
    pub name: String,
    /// The evaluated scenario metrics.
    pub scenario: ScenarioMetrics,
    /// Scenario minus the sweep's shared baseline.
    pub deltas: ScenarioDeltas,
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepReport {
    /// Sweep name.
    pub name: String,
    /// Canonical base-system slug.
    pub base: String,
    /// Telemetry seed.
    pub seed: u64,
    /// Fingerprint of the canonical sweep spec.
    pub fingerprint: String,
    /// Number of expanded scenarios (the full cross product — under
    /// `top_n` this exceeds `rows.len()`).
    pub scenario_count: u64,
    /// The `top_n` bound when the sweep streamed, else `null`.
    pub top_n: Option<u64>,
    /// The effective ranking metric when the sweep streamed, else
    /// `null`.
    pub rank_by: Option<String>,
    /// The shared baseline (base system, no overrides).
    pub baseline: ScenarioMetrics,
    /// One row per combination in expansion order — or, under `top_n`,
    /// the best N rows in rank order (ascending metric, expansion-index
    /// tie-break).
    pub rows: Vec<SweepRow>,
}

impl SweepSpec {
    /// Parses and validates a sweep spec from JSON text. As strict as
    /// [`ScenarioSpec::from_json`]; additionally requires `"axes"` and
    /// validates the expanded combinations (every one below
    /// [`MAX_SCENARIOS`]; above it — reachable only with `top_n` —
    /// every axis value is validated against the first value of every
    /// other axis, and any bad *combination* of independently-valid
    /// values still fails at evaluation time).
    pub fn from_json(text: &str) -> Result<SweepSpec, ScenarioError> {
        SweepSpec::from_json_with_top(text, None)
    }

    /// [`SweepSpec::from_json`] with a caller-supplied `top_n` override
    /// (the CLI's `--top N`), applied *before* the expansion-ceiling
    /// check so `--top` unlocks the streaming ceiling exactly like an
    /// in-file `"top_n"`.
    pub fn from_json_with_top(
        text: &str,
        top_override: Option<u64>,
    ) -> Result<SweepSpec, ScenarioError> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| ScenarioError::Json(e.to_string()))?;
        let pairs = value
            .as_object()
            .ok_or_else(|| ScenarioError::Invalid("sweep spec must be a JSON object".into()))?;
        // Reuse the run-spec parser for the shared fields by stripping
        // the sweep-only keys (it rejects them with a redirect message
        // otherwise).
        let sweep_keys = ["axes", "top_n", "rank_by"];
        let without_axes = Value::Object(
            pairs
                .iter()
                .filter(|(k, _)| !sweep_keys.contains(&k.as_str()))
                .cloned()
                .collect(),
        );
        let common = ScenarioSpec::from_value(&without_axes)?;
        let mut top_n = match pairs.iter().find(|(k, _)| k == "top_n").map(|(_, v)| v) {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                ScenarioError::Invalid("\"top_n\" must be a non-negative integer".into())
            })?),
        };
        if let Some(n) = top_override {
            top_n = Some(n);
        }
        if top_n == Some(0) {
            return Err(ScenarioError::Invalid(
                "\"top_n\" must be at least 1".into(),
            ));
        }
        let rank_by = match pairs.iter().find(|(k, _)| k == "rank_by").map(|(_, v)| v) {
            None | Some(Value::Null) => None,
            Some(Value::Str(s)) => {
                if !RANK_METRICS.contains(&s.as_str()) {
                    return Err(ScenarioError::Invalid(format!(
                        "unknown rank metric {s:?} (one of: {RANK_METRICS:?})"
                    )));
                }
                Some(s.clone())
            }
            Some(_) => {
                return Err(ScenarioError::Invalid(
                    "\"rank_by\" must be a string".into(),
                ))
            }
        };
        if rank_by.is_some() && top_n.is_none() {
            return Err(ScenarioError::Invalid(
                "\"rank_by\" needs \"top_n\" — without a bound there is nothing to rank".into(),
            ));
        }
        let axes_value = pairs
            .iter()
            .find(|(k, _)| k == "axes")
            .map(|(_, v)| v)
            .ok_or_else(|| {
                ScenarioError::Invalid(
                    "sweep spec is missing \"axes\" — a plain scenario runs with \
                     `thirstyflops scenario run`"
                        .into(),
                )
            })?;
        let axes_pairs = axes_value
            .as_object()
            .ok_or_else(|| ScenarioError::Invalid("\"axes\" must be an object".into()))?;
        if axes_pairs.is_empty() {
            return Err(ScenarioError::Invalid("\"axes\" must not be empty".into()));
        }
        let mut axes = Vec::with_capacity(axes_pairs.len());
        let mut expansion: usize = 1;
        for (path, values) in axes_pairs {
            if !AXIS_PATHS.contains(&path.as_str()) {
                return Err(ScenarioError::Invalid(format!(
                    "unknown axis path {path:?} (settable: {AXIS_PATHS:?})"
                )));
            }
            if axes.iter().any(|a: &Axis| &a.path == path) {
                return Err(ScenarioError::Invalid(format!(
                    "duplicate axis path {path:?}"
                )));
            }
            let values = values
                .as_array()
                .ok_or_else(|| {
                    ScenarioError::Invalid(format!("axis {path:?} must map to an array"))
                })?
                .to_vec();
            if values.is_empty() {
                return Err(ScenarioError::Invalid(format!(
                    "axis {path:?} must have at least one value"
                )));
            }
            expansion = expansion.saturating_mul(values.len());
            axes.push(Axis {
                path: path.clone(),
                values,
            });
        }
        if expansion > ceiling_for(top_n) {
            return Err(ceiling_error(expansion, top_n));
        }
        let sweep = SweepSpec {
            name: common.name,
            description: common.description,
            base: common.base,
            seed: common.seed,
            overrides: common.overrides,
            axes,
            top_n,
            rank_by,
        };
        // Every combination must be a valid scenario spec. This makes
        // the evaluate path expand twice (once here, once in
        // `evaluate_sweep`), a deliberate trade: parse-time rejection of
        // any bad combination costs ~60µs for a 25-combo sweep — noise
        // next to one 8760-hour simulation. Above the plain ceiling
        // (streaming sweeps only) full expansion would defeat the point
        // of streaming, so validation samples: every axis value, with
        // the other axes pinned to their first value.
        if expansion <= MAX_SCENARIOS {
            sweep.expand()?;
        } else {
            sweep.validate_sampled()?;
        }
        Ok(sweep)
    }

    /// Total number of combinations (the full cross product).
    pub fn combination_count(&self) -> usize {
        self.axes
            .iter()
            .map(|a| a.values.len())
            .fold(1, usize::saturating_mul)
    }

    /// The applicable expansion ceiling for this sweep's mode.
    pub fn ceiling(&self) -> usize {
        ceiling_for(self.top_n)
    }

    /// The canonical compact JSON rendering (the HTTP body-cache key;
    /// axes are rendered as `{path, values}` records in file order).
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("sweep structs always serialize")
    }

    /// Fingerprint of the canonical rendering (16 hex digits).
    pub fn fingerprint(&self) -> String {
        fingerprint_of(&self.canonical_json())
    }

    /// Expands the cartesian product into one validated
    /// [`ScenarioSpec`] per combination, first axis slowest. Only
    /// sensible below [`MAX_SCENARIOS`] — streaming sweeps address
    /// combinations individually via [`SweepSpec::combination`].
    pub fn expand(&self) -> Result<Vec<ScenarioSpec>, ScenarioError> {
        (0..self.combination_count())
            .map(|index| self.combination(index))
            .collect()
    }

    /// Builds the validated [`ScenarioSpec`] for one combination index
    /// without expanding anything else. The index ↔ combination map is
    /// pure mixed-radix arithmetic (first axis slowest, matching
    /// [`SweepSpec::expand`] order), so chunked streaming evaluation
    /// addresses any cell in O(axes) — the memory floor of a 10⁶-cell
    /// sweep is one chunk, not the cross product.
    ///
    /// # Panics
    /// Panics if `index >= combination_count()`.
    pub fn combination(&self, index: usize) -> Result<ScenarioSpec, ScenarioError> {
        assert!(
            index < self.combination_count(),
            "combination index {index} out of range"
        );
        let mut indices = vec![0usize; self.axes.len()];
        let mut rem = index;
        for pos in (0..self.axes.len()).rev() {
            let len = self.axes[pos].values.len();
            indices[pos] = rem % len;
            rem /= len;
        }
        self.spec_for_indices(&indices)
    }

    /// Sampled validation for streaming sweeps too large to expand:
    /// every axis value is checked once, with every other axis pinned
    /// to its first value (Σ axis lengths combinations instead of their
    /// product). An invalid *combination* of independently-valid values
    /// still fails at evaluation time, per row.
    fn validate_sampled(&self) -> Result<(), ScenarioError> {
        let mut indices = vec![0usize; self.axes.len()];
        self.spec_for_indices(&indices)?;
        for pos in 0..self.axes.len() {
            for i in 1..self.axes[pos].values.len() {
                indices[pos] = i;
                self.spec_for_indices(&indices)?;
            }
            indices[pos] = 0;
        }
        Ok(())
    }

    fn spec_for_indices(&self, indices: &[usize]) -> Result<ScenarioSpec, ScenarioError> {
        let mut overrides = self.overrides.to_value();
        let mut label_parts = Vec::with_capacity(self.axes.len());
        for (axis, &i) in self.axes.iter().zip(indices) {
            let value = &axis.values[i];
            set_path(&mut overrides, &axis.path, value.clone())?;
            label_parts.push(format!("{}={}", axis.path, label_of(value)));
        }
        let mut spec_pairs = vec![
            (
                "name".to_string(),
                Value::Str(format!("{}[{}]", self.name, label_parts.join(","))),
            ),
            ("base".to_string(), Value::Str(self.base.clone())),
            ("seed".to_string(), Value::UInt(self.seed)),
            ("overrides".to_string(), overrides),
        ];
        if let Some(d) = &self.description {
            spec_pairs.insert(1, ("description".to_string(), Value::Str(d.clone())));
        }
        ScenarioSpec::from_value(&Value::Object(spec_pairs)).map_err(|e| {
            ScenarioError::Invalid(format!(
                "combination [{}] is invalid: {}",
                label_parts.join(","),
                e.message()
            ))
        })
    }
}

fn ceiling_for(top_n: Option<u64>) -> usize {
    if top_n.is_some() {
        MAX_SCENARIOS_TOP_N
    } else {
        MAX_SCENARIOS
    }
}

fn ceiling_error(expansion: usize, top_n: Option<u64>) -> ScenarioError {
    if top_n.is_some() {
        ScenarioError::Invalid(format!(
            "sweep expands to {expansion} scenarios — the streaming top-N ceiling is \
             {MAX_SCENARIOS_TOP_N}"
        ))
    } else {
        ScenarioError::Invalid(format!(
            "sweep expands to {expansion} scenarios — the ceiling is {MAX_SCENARIOS} \
             (set \"top_n\" to stream the best rows of up to {MAX_SCENARIOS_TOP_N} cells)"
        ))
    }
}

/// Compact axis-value label for expanded scenario names (strings bare,
/// everything else as compact JSON).
fn label_of(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        other => serde_json::to_string(other).expect("axis values re-render"),
    }
}

/// Writes `value` at a dotted `path` inside an overrides tree, creating
/// (or replacing `null`) intermediate objects along the way.
fn set_path(tree: &mut Value, path: &str, value: Value) -> Result<(), ScenarioError> {
    let mut current = tree;
    let segments: Vec<&str> = path.split('.').collect();
    for (depth, segment) in segments.iter().enumerate() {
        let last = depth + 1 == segments.len();
        if matches!(current, Value::Null) {
            *current = Value::Object(Vec::new());
        }
        let Value::Object(pairs) = current else {
            return Err(ScenarioError::Invalid(format!(
                "axis path {path:?} crosses a non-object at {segment:?}"
            )));
        };
        let idx = match pairs.iter().position(|(k, _)| k == segment) {
            Some(i) => i,
            None => {
                pairs.push((
                    segment.to_string(),
                    if last {
                        Value::Null
                    } else {
                        Value::Object(Vec::new())
                    },
                ));
                pairs.len() - 1
            }
        };
        if last {
            pairs[idx].1 = value;
            return Ok(());
        }
        current = &mut pairs[idx].1;
    }
    unreachable!("paths have at least one segment")
}

/// Evaluates a sweep: chunked streaming evaluation through the batched
/// K-lane kernel (or the scalar reference path under `--no-batch`),
/// rows merged back in expansion order — bit-identical at every thread
/// count and chunk size (`docs/CONCURRENCY.md`).
///
/// The expansion ceiling is enforced *here as well as* in
/// [`SweepSpec::from_json`]: code-built sweeps (and any future caller
/// that skips the parser) hit the same guard, so no layer can stream an
/// unbounded cross product by accident.
pub fn evaluate_sweep(sweep: &SweepSpec) -> Result<SweepReport, ScenarioError> {
    let expansion = sweep.combination_count();
    if expansion > sweep.ceiling() {
        return Err(ceiling_error(expansion, sweep.top_n));
    }
    if sweep.top_n == Some(0) {
        return Err(ScenarioError::Invalid(
            "\"top_n\" must be at least 1".into(),
        ));
    }
    if let Some(rank) = sweep.rank_by.as_deref() {
        if !RANK_METRICS.contains(&rank) {
            return Err(ScenarioError::Invalid(format!(
                "unknown rank metric {rank:?} (one of: {RANK_METRICS:?})"
            )));
        }
    }
    crate::batch::evaluate_sweep_streaming(sweep)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SITING: &str = r#"{
        "name": "siting",
        "base": "polaris",
        "axes": {
            "climate.preset": ["bologna", "kobe", "lemont"],
            "pue": [1.1, 1.4]
        }
    }"#;

    #[test]
    fn expansion_is_the_cartesian_product_in_file_order() {
        let sweep = SweepSpec::from_json(SITING).unwrap();
        let specs = sweep.expand().unwrap();
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].name, "siting[climate.preset=bologna,pue=1.1]");
        assert_eq!(specs[1].name, "siting[climate.preset=bologna,pue=1.4]");
        assert_eq!(specs[5].name, "siting[climate.preset=lemont,pue=1.4]");
        // Axis values landed in the overrides.
        assert_eq!(
            specs[0]
                .overrides
                .climate
                .as_ref()
                .unwrap()
                .preset
                .as_deref(),
            Some("bologna")
        );
        assert_eq!(specs[0].overrides.pue, Some(1.1));
    }

    #[test]
    fn axes_compose_with_common_overrides() {
        let sweep = SweepSpec::from_json(
            r#"{"name": "s", "base": "polaris",
                "overrides": {"climate": {"wue_scale": 0.9}},
                "axes": {"climate.preset": ["kobe", "lemont"]}}"#,
        )
        .unwrap();
        let specs = sweep.expand().unwrap();
        for spec in &specs {
            let climate = spec.overrides.climate.as_ref().unwrap();
            assert_eq!(climate.wue_scale, Some(0.9), "common override kept");
            assert!(climate.preset.is_some(), "axis value set");
        }
    }

    #[test]
    fn invalid_axes_are_rejected() {
        for (text, needle) in [
            (
                r#"{"name": "s", "base": "polaris", "axes": {"pue": []}}"#,
                "at least one value",
            ),
            (
                r#"{"name": "s", "base": "polaris", "axes": {"color": ["red"]}}"#,
                "unknown axis path",
            ),
            (
                r#"{"name": "s", "base": "polaris", "axes": {"pue": [0.5]}}"#,
                "pue",
            ),
            (r#"{"name": "s", "base": "polaris"}"#, "axes"),
        ] {
            let err = SweepSpec::from_json(text).unwrap_err();
            assert!(
                err.message().contains(needle),
                "{text}: {err} missing {needle:?}"
            );
        }
    }

    #[test]
    fn expansion_ceiling_guards_combinatorial_bombs() {
        let values: Vec<String> = (0..80).map(|i| format!("{}.0", 1 + i)).collect();
        let big = format!(
            r#"{{"name": "s", "base": "polaris",
                "axes": {{"climate.wue_scale": [{v}],
                          "pue": [1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0],
                          "reclaimed.fraction": [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]}}}}"#,
            v = values.join(", ")
        );
        // 80 × 10 × 7 = 5600 > 4096. (reclaimed.fraction alone is not a
        // full reclaimed override, but the ceiling trips before
        // validation would.)
        let err = SweepSpec::from_json(&big).unwrap_err();
        assert!(err.message().contains("ceiling"), "{err}");
    }

    #[test]
    fn sweep_evaluates_with_shared_baseline() {
        let report = evaluate_sweep(&SweepSpec::from_json(SITING).unwrap()).unwrap();
        assert_eq!(report.scenario_count, 6);
        assert_eq!(report.rows.len(), 6);
        assert_eq!(report.base, "polaris");
        assert!(report.baseline.operational_water_l > 0.0);
        // Rows with lower PUE use less indirect water than their 1.4
        // siblings at the same climate.
        for pair in report.rows.chunks(2) {
            assert!(
                pair[0].scenario.indirect_water_l < pair[1].scenario.indirect_water_l,
                "{} vs {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn sweep_report_is_deterministic() {
        let sweep = SweepSpec::from_json(SITING).unwrap();
        let a = serde_json::to_string(&evaluate_sweep(&sweep).unwrap()).unwrap();
        let b = serde_json::to_string(&evaluate_sweep(&sweep).unwrap()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn incomplete_axis_combination_fails_validation() {
        // reclaimed.fraction alone misses the required reclaimed.wsi.
        let err = SweepSpec::from_json(
            r#"{"name": "s", "base": "polaris",
                "axes": {"reclaimed.fraction": [0.2]}}"#,
        )
        .unwrap_err();
        assert!(err.message().contains("combination"), "{err}");
    }
}
