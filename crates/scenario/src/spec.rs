//! Scenario specifications: the declarative JSON schema, its strict
//! parser, and validation.
//!
//! A spec is a named set of **composable overrides** on a cataloged base
//! system. Parsing is deliberately strict — unknown keys and
//! out-of-range values are hard errors, never silently ignored — because
//! a typo in a what-if file (`"wue_scal": 0.8`) would otherwise produce
//! a perfectly plausible wrong answer. The full schema and override
//! semantics live in `docs/SCENARIOS.md`.
//!
//! The parser is hand-rolled over the serde shim's [`Value`] tree rather
//! than derived: the derive fills missing fields and drops unknown ones,
//! which is exactly the leniency a spec language must not have.

use std::collections::BTreeMap;

use serde::Value;
use thirstyflops_catalog::{wsi, SystemId};
use thirstyflops_grid::{EnergySource, RegionId};
use thirstyflops_units::Pue;
use thirstyflops_weather::ClimatePreset;

/// Telemetry seed used when a spec omits `"seed"` (the evaluation year —
/// same default as the CLI and the HTTP API).
pub const DEFAULT_SEED: u64 = 2023;

/// Potable water price assumed when a spec has no `water_price`
/// override, USD per kiloliter (order of US industrial rates).
pub const DEFAULT_POTABLE_USD_PER_KL: f64 = 1.5;

/// Reclaimed (non-potable) water price assumed when a `reclaimed`
/// override omits `usd_per_kl`, USD per kiloliter.
pub const DEFAULT_RECLAIMED_USD_PER_KL: f64 = 0.6;

/// Why a spec could not be parsed or evaluated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The text was not valid JSON.
    Json(String),
    /// The JSON was structurally or semantically invalid: unknown keys,
    /// missing required fields, out-of-range values, unknown names.
    Invalid(String),
}

impl ScenarioError {
    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            ScenarioError::Json(m) | ScenarioError::Invalid(m) => m,
        }
    }
}

impl core::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScenarioError::Json(m) => write!(f, "invalid JSON: {m}"),
            ScenarioError::Invalid(m) => write!(f, "invalid scenario spec: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

fn invalid(msg: impl Into<String>) -> ScenarioError {
    ScenarioError::Invalid(msg.into())
}

/// A named scenario: a base system plus composable overrides.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ScenarioSpec {
    /// Scenario name (free text, used in payloads and sweep rows).
    pub name: String,
    /// Optional free-text description.
    pub description: Option<String>,
    /// Canonical slug of the base system (`SystemId::slug`).
    pub base: String,
    /// Telemetry seed (default [`DEFAULT_SEED`]).
    pub seed: u64,
    /// The overrides applied on top of the base system.
    pub overrides: Overrides,
}

/// Every override a spec may apply. All fields compose: a spec may move
/// a system to another climate *and* re-price its water *and* schedule a
/// fleet upgrade.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize)]
pub struct Overrides {
    /// Site climate: preset relocation and/or WUE scaling.
    pub climate: Option<ClimateOverride>,
    /// Electricity grid: region relocation and/or mix change.
    pub grid: Option<GridOverride>,
    /// Facility PUE replacement (≥ 1).
    pub pue: Option<f64>,
    /// Compute node count replacement (≥ 1).
    pub nodes: Option<u32>,
    /// Direct (site) water-scarcity index selection.
    pub wsi: Option<WsiOverride>,
    /// Reclaimed-water supply curve for the direct (cooling) demand.
    pub reclaimed: Option<ReclaimedOverride>,
    /// Seasonal water-price schedule for potable supply.
    pub water_price: Option<WaterPriceOverride>,
    /// Multi-year fleet-upgrade schedule (lifecycle view).
    pub fleet_upgrade: Option<FleetUpgradeOverride>,
}

/// `"climate"` override: relocate the site climate and/or scale the
/// cooling WUE series (retrofit what-ifs).
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize)]
pub struct ClimateOverride {
    /// Canonical climate-preset slug (`ClimatePreset::slug`).
    pub preset: Option<String>,
    /// Multiplier on the hourly WUE series, in `(0, 10]`.
    pub wue_scale: Option<f64>,
}

/// `"grid"` override: relocate the grid region and/or change the energy
/// mix. `mix` (absolute replacement) and `mix_delta` (additive share
/// shifts) are mutually exclusive; see `docs/SCENARIOS.md` for the exact
/// scaling semantics.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize)]
pub struct GridOverride {
    /// Canonical grid-region slug (`RegionId::slug`).
    pub region: Option<String>,
    /// Absolute replacement mix: source slug → share, summing to 1.
    pub mix: Option<BTreeMap<String, f64>>,
    /// Additive share deltas: source slug → delta in `[-1, 1]`, applied
    /// to the region's annual mix and renormalized.
    pub mix_delta: Option<BTreeMap<String, f64>>,
}

/// `"wsi"` override: pick the direct water-scarcity index, either as a
/// literal value or from the embedded AWARE-like fields (US states and
/// non-US countries).
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize)]
pub struct WsiOverride {
    /// Literal site WSI in `[0, 1]`.
    pub site: Option<f64>,
    /// Named field lookup: `"state:AZ"` (AWARE-US state table) or
    /// `"country:India"` (AWARE-global country table).
    pub field: Option<String>,
}

/// `"reclaimed"` override: a fraction of the direct (cooling) water
/// demand met by reclaimed, non-potable supply with its own scarcity
/// index and price.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ReclaimedOverride {
    /// Fraction of direct demand met by reclaimed supply, `[0, 1]`.
    pub fraction: f64,
    /// WSI of the reclaimed source, `[0, 1]` (reclaimed water typically
    /// carries a much lower scarcity weight than potable).
    pub wsi: f64,
    /// Flat reclaimed-water price, USD/kL (default
    /// [`DEFAULT_RECLAIMED_USD_PER_KL`]).
    pub usd_per_kl: Option<f64>,
}

/// `"water_price"` override: a seasonal potable-water price schedule.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct WaterPriceOverride {
    /// Base potable price, USD per kiloliter (≥ 0).
    pub base_usd_per_kl: f64,
    /// Twelve monthly multipliers (January first, each in `(0, 100)`);
    /// omitted = flat pricing.
    pub monthly_multiplier: Option<Vec<f64>>,
}

/// `"fleet_upgrade"` override: a service life with mid-life accelerator
/// swaps, projected through `core::lifecycle::project_with_upgrade`
/// semantics (retired silicon is sunk; new silicon adds embodied water).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct FleetUpgradeOverride {
    /// Service life in years, `(0, 50]`.
    pub lifetime_years: f64,
    /// The upgrade steps (at least one, at most 16).
    pub upgrades: Vec<UpgradeStep>,
}

/// One fleet-upgrade step: in `year`, every GPU is swapped for `gpu`.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct UpgradeStep {
    /// Year of the swap, strictly inside `(0, lifetime_years)`.
    pub year: f64,
    /// The replacement accelerator package.
    pub gpu: GpuSpec,
}

/// Replacement-GPU silicon for an upgrade step (the Eq. 4 inputs).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct GpuSpec {
    /// Marketing name (free text).
    pub name: String,
    /// Aggregate die area per package, mm², `(0, 5000]`.
    pub die_mm2: f64,
    /// Process node, nm, `[2, 90]`.
    pub process_nm: u32,
    /// Package TDP, watts, `(0, 5000]`.
    pub tdp_watts: f64,
    /// Fab yield in `(0, 1]` (default 0.7, the catalog's GPU yield).
    pub yield_rate: Option<f64>,
    /// Fab site slug: `tsmc-taiwan` (default), `globalfoundries-us`,
    /// `samsung-korea`, `intel-oregon`.
    pub fab: Option<String>,
}

impl GpuSpec {
    /// The resolved fab site.
    pub fn fab_site(&self) -> Result<thirstyflops_catalog::hardware::FabSite, ScenarioError> {
        use thirstyflops_catalog::hardware::FabSite;
        match self.fab.as_deref() {
            None | Some("tsmc-taiwan") => Ok(FabSite::TsmcTaiwan),
            Some("globalfoundries-us") => Ok(FabSite::GlobalFoundriesUs),
            Some("samsung-korea") => Ok(FabSite::SamsungKorea),
            Some("intel-oregon") => Ok(FabSite::IntelOregon),
            Some(other) => Err(invalid(format!(
                "unknown fab site {other:?} (known: tsmc-taiwan, globalfoundries-us, \
                 samsung-korea, intel-oregon)"
            ))),
        }
    }

    /// The catalog processor spec this GPU prices as.
    pub fn to_processor_spec(&self) -> Result<thirstyflops_catalog::ProcessorSpec, ScenarioError> {
        Ok(thirstyflops_catalog::ProcessorSpec::with_yield(
            &self.name,
            self.die_mm2,
            self.process_nm,
            self.fab_site()?,
            self.tdp_watts,
            self.yield_rate.unwrap_or(0.7),
        ))
    }
}

/// Resolves a `"state:XX"` / `"country:Name"` WSI field reference to a
/// scarcity index value.
pub fn resolve_wsi_field(field: &str) -> Result<f64, ScenarioError> {
    if let Some(state) = field.strip_prefix("state:") {
        let state = state.trim().to_ascii_uppercase();
        return wsi::state_wsi(&state)
            .map(|w| w.value())
            .ok_or_else(|| invalid(format!("unknown US state {state:?} in wsi field")));
    }
    if let Some(country) = field.strip_prefix("country:") {
        let country = country.trim();
        return wsi::country_wsi(country).map(|w| w.value()).ok_or_else(|| {
            invalid(format!(
                "unknown country {country:?} in wsi field (names are case-sensitive, \
                 e.g. \"country:India\")"
            ))
        });
    }
    Err(invalid(format!(
        "wsi field must be \"state:XX\" or \"country:Name\", got {field:?}"
    )))
}

impl ScenarioSpec {
    /// A spec with no overrides (evaluates to zero deltas).
    pub fn new(name: impl Into<String>, base: SystemId, seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            description: None,
            base: base.slug().to_string(),
            seed,
            overrides: Overrides::default(),
        }
    }

    /// The base system.
    pub fn base_id(&self) -> Result<SystemId, ScenarioError> {
        self.base
            .parse()
            .map_err(|e| invalid(format!("{e} — `thirstyflops systems` lists the catalog")))
    }

    /// Parses and validates a spec from JSON text. Strict: unknown keys
    /// and out-of-range values are hard errors.
    pub fn from_json(text: &str) -> Result<ScenarioSpec, ScenarioError> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| ScenarioError::Json(e.to_string()))?;
        Self::from_value(&value)
    }

    /// Parses and validates a spec from an already-parsed JSON tree
    /// (the sweep expander's entry point).
    pub fn from_value(value: &Value) -> Result<ScenarioSpec, ScenarioError> {
        let pairs = as_obj(value, "spec")?;
        if field(pairs, "axes").is_some() {
            return Err(invalid(
                "\"axes\" makes this a sweep spec — run it with `thirstyflops scenario sweep` \
                 (or POST /v1/scenarios/sweep)",
            ));
        }
        check_keys(
            pairs,
            &["name", "description", "base", "seed", "overrides"],
            "spec",
        )?;
        let name = parse_string(require(pairs, "name", "spec")?, "name")?;
        if name.is_empty() {
            return Err(invalid("\"name\" must not be empty"));
        }
        let description = match field(pairs, "description") {
            None => None,
            Some(v) => Some(parse_string(v, "description")?),
        };
        let base_raw = parse_string(require(pairs, "base", "spec")?, "base")?;
        let base: SystemId = base_raw
            .parse()
            .map_err(|e| invalid(format!("{e} — `thirstyflops systems` lists the catalog")))?;
        let seed = match field(pairs, "seed") {
            None => DEFAULT_SEED,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| invalid("\"seed\" must be a non-negative integer"))?,
        };
        let overrides = match field(pairs, "overrides") {
            None => Overrides::default(),
            Some(v) => parse_overrides(v)?,
        };
        let spec = ScenarioSpec {
            name,
            description,
            base: base.slug().to_string(),
            seed,
            overrides,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Re-validates the spec (used on code-built specs too; `from_json`
    /// always returns validated specs).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let base = self.base_id()?;
        let base_spec = thirstyflops_catalog::SystemSpec::reference(base);
        let o = &self.overrides;
        if let Some(c) = &o.climate {
            if c.preset.is_none() && c.wue_scale.is_none() {
                return Err(invalid("\"climate\" override is empty"));
            }
            if let Some(p) = &c.preset {
                p.parse::<ClimatePreset>()
                    .map_err(|e| invalid(e.to_string()))?;
            }
            if let Some(k) = c.wue_scale {
                if !(k.is_finite() && k > 0.0 && k <= 10.0) {
                    return Err(invalid(format!(
                        "\"climate.wue_scale\" must be in (0, 10], got {k}"
                    )));
                }
            }
        }
        if let Some(g) = &o.grid {
            if g.region.is_none() && g.mix.is_none() && g.mix_delta.is_none() {
                return Err(invalid("\"grid\" override is empty"));
            }
            if let Some(r) = &g.region {
                r.parse::<RegionId>().map_err(|e| invalid(e.to_string()))?;
            }
            if g.mix.is_some() && g.mix_delta.is_some() {
                return Err(invalid(
                    "\"grid.mix\" (replacement) and \"grid.mix_delta\" (shift) are mutually \
                     exclusive",
                ));
            }
            if let Some(mix) = &g.mix {
                if mix.is_empty() {
                    return Err(invalid("\"grid.mix\" must name at least one source"));
                }
                let typed = parse_source_map(mix, "grid.mix")?;
                let mut total = 0.0;
                for (source, share) in &typed {
                    if !(share.is_finite() && (0.0..=1.0).contains(share)) {
                        return Err(invalid(format!(
                            "\"grid.mix\" share for {:?} must be in [0, 1], got {share}",
                            source.slug()
                        )));
                    }
                    total += share;
                }
                if (total - 1.0).abs() > 1e-6 {
                    return Err(invalid(format!(
                        "\"grid.mix\" shares must sum to 1, got {total}"
                    )));
                }
            }
            if let Some(delta) = &g.mix_delta {
                if delta.is_empty() {
                    return Err(invalid("\"grid.mix_delta\" must name at least one source"));
                }
                let typed = parse_source_map(delta, "grid.mix_delta")?;
                for (source, d) in &typed {
                    if !(d.is_finite() && (-1.0..=1.0).contains(d)) {
                        return Err(invalid(format!(
                            "\"grid.mix_delta\" for {:?} must be in [-1, 1], got {d}",
                            source.slug()
                        )));
                    }
                }
                // The shifted mix must keep a positive total share.
                let region = effective_region(&base_spec, g)?;
                shifted_mix(region, delta)?;
            }
        }
        if let Some(p) = o.pue {
            Pue::new(p).map_err(|e| invalid(format!("\"pue\": {e}")))?;
            if p > 5.0 {
                return Err(invalid(format!("\"pue\" above 5 is not a datacenter: {p}")));
            }
        }
        if let Some(n) = o.nodes {
            if n == 0 {
                return Err(invalid("\"nodes\" must be at least 1"));
            }
        }
        if let Some(w) = &o.wsi {
            match (&w.site, &w.field) {
                (Some(_), Some(_)) | (None, None) => {
                    return Err(invalid(
                        "\"wsi\" needs exactly one of \"site\" (literal) or \"field\" (lookup)",
                    ))
                }
                (Some(v), None) => {
                    if !(v.is_finite() && (0.0..=1.0).contains(v)) {
                        return Err(invalid(format!("\"wsi.site\" must be in [0, 1], got {v}")));
                    }
                }
                (None, Some(f)) => {
                    resolve_wsi_field(f)?;
                }
            }
        }
        if let Some(r) = &o.reclaimed {
            for (label, v, lo, hi) in [
                ("reclaimed.fraction", r.fraction, 0.0, 1.0),
                ("reclaimed.wsi", r.wsi, 0.0, 1.0),
            ] {
                if !(v.is_finite() && (lo..=hi).contains(&v)) {
                    return Err(invalid(format!(
                        "\"{label}\" must be in [{lo}, {hi}], got {v}"
                    )));
                }
            }
            if let Some(p) = r.usd_per_kl {
                if !(p.is_finite() && p >= 0.0) {
                    return Err(invalid(format!(
                        "\"reclaimed.usd_per_kl\" must be non-negative, got {p}"
                    )));
                }
            }
        }
        if let Some(wp) = &o.water_price {
            if !(wp.base_usd_per_kl.is_finite() && wp.base_usd_per_kl >= 0.0) {
                return Err(invalid(format!(
                    "\"water_price.base_usd_per_kl\" must be non-negative, got {}",
                    wp.base_usd_per_kl
                )));
            }
            if let Some(mult) = &wp.monthly_multiplier {
                if mult.len() != 12 {
                    return Err(invalid(format!(
                        "\"water_price.monthly_multiplier\" needs 12 values (January first), \
                         got {}",
                        mult.len()
                    )));
                }
                for (i, m) in mult.iter().enumerate() {
                    if !(m.is_finite() && *m > 0.0 && *m < 100.0) {
                        return Err(invalid(format!(
                            "\"water_price.monthly_multiplier\"[{i}] must be in (0, 100), got {m}"
                        )));
                    }
                }
            }
        }
        if let Some(fu) = &o.fleet_upgrade {
            if !(fu.lifetime_years.is_finite()
                && fu.lifetime_years > 0.0
                && fu.lifetime_years <= 50.0)
            {
                return Err(invalid(format!(
                    "\"fleet_upgrade.lifetime_years\" must be in (0, 50], got {}",
                    fu.lifetime_years
                )));
            }
            if fu.upgrades.is_empty() || fu.upgrades.len() > 16 {
                return Err(invalid(
                    "\"fleet_upgrade.upgrades\" needs between 1 and 16 steps",
                ));
            }
            if !base_spec.has_gpus() {
                return Err(invalid(format!(
                    "\"fleet_upgrade\" swaps GPUs, but {} has none",
                    base.name()
                )));
            }
            for (i, step) in fu.upgrades.iter().enumerate() {
                if !(step.year.is_finite() && step.year > 0.0 && step.year < fu.lifetime_years) {
                    return Err(invalid(format!(
                        "\"fleet_upgrade.upgrades\"[{i}].year must sit inside (0, {}), got {}",
                        fu.lifetime_years, step.year
                    )));
                }
                let gpu = &step.gpu;
                if gpu.name.is_empty() {
                    return Err(invalid(format!(
                        "\"fleet_upgrade.upgrades\"[{i}].gpu.name must not be empty"
                    )));
                }
                if !(gpu.die_mm2.is_finite() && gpu.die_mm2 > 0.0 && gpu.die_mm2 <= 5000.0) {
                    return Err(invalid(format!(
                        "gpu.die_mm2 must be in (0, 5000], got {}",
                        gpu.die_mm2
                    )));
                }
                if !(2..=90).contains(&gpu.process_nm) {
                    return Err(invalid(format!(
                        "gpu.process_nm must be in [2, 90], got {}",
                        gpu.process_nm
                    )));
                }
                if !(gpu.tdp_watts.is_finite() && gpu.tdp_watts > 0.0 && gpu.tdp_watts <= 5000.0) {
                    return Err(invalid(format!(
                        "gpu.tdp_watts must be in (0, 5000], got {}",
                        gpu.tdp_watts
                    )));
                }
                if let Some(y) = gpu.yield_rate {
                    if !(y.is_finite() && y > 0.0 && y <= 1.0) {
                        return Err(invalid(format!(
                            "gpu.yield_rate must be in (0, 1], got {y}"
                        )));
                    }
                }
                gpu.fab_site()?;
            }
        }
        Ok(())
    }

    /// The canonical compact JSON rendering of the validated spec:
    /// defaults filled in, aliases collapsed to slugs, fields in schema
    /// order. Two spec files that mean the same thing render to the same
    /// canonical bytes — this is the HTTP body-cache key and the input
    /// of [`ScenarioSpec::fingerprint`].
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("spec structs always serialize")
    }

    /// A short stable fingerprint of the canonical spec (16 hex digits),
    /// carried in payloads so clients can tell identical scenarios apart
    /// from merely identically-named ones.
    pub fn fingerprint(&self) -> String {
        fingerprint_of(&self.canonical_json())
    }
}

/// 16-hex-digit SipHash fingerprint of a canonical rendering
/// (deterministic across processes — fixed-key hasher).
pub(crate) fn fingerprint_of(canonical: &str) -> String {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::default();
    canonical.hash(&mut hasher);
    format!("{:016x}", hasher.finish())
}

/// The grid region a spec evaluates against: the override if present,
/// else the base system's.
pub(crate) fn effective_region(
    base: &thirstyflops_catalog::SystemSpec,
    g: &GridOverride,
) -> Result<RegionId, ScenarioError> {
    match &g.region {
        Some(r) => r.parse::<RegionId>().map_err(|e| invalid(e.to_string())),
        None => Ok(base.region),
    }
}

/// Parses a mix / mix-delta map into typed sources, collapsing name
/// spellings onto the canonical source. Two keys that name one source
/// (`"Hydro"` and `"hydro"`) are a hard error — never a silently
/// dropped entry.
pub(crate) fn parse_source_map(
    map: &BTreeMap<String, f64>,
    ctx: &str,
) -> Result<BTreeMap<EnergySource, f64>, ScenarioError> {
    let mut out = BTreeMap::new();
    for (name, value) in map {
        let source: EnergySource =
            name.parse()
                .map_err(|e: thirstyflops_grid::ParseEnergySourceError| {
                    invalid(format!("{ctx}: {e}"))
                })?;
        if out.insert(source, *value).is_some() {
            return Err(invalid(format!(
                "duplicate source {:?} in {ctx} (source names collapse case-insensitively)",
                source.slug()
            )));
        }
    }
    Ok(out)
}

/// Applies `mix_delta` to a region's annual mix: shares shift by their
/// deltas (clamped at zero), then renormalize. Errors when every share
/// lands at zero.
pub(crate) fn shifted_mix(
    region: RegionId,
    delta: &BTreeMap<String, f64>,
) -> Result<thirstyflops_grid::EnergyMix, ScenarioError> {
    let typed = parse_source_map(delta, "grid.mix_delta")?;
    let base = thirstyflops_grid::GridRegion::preset(region).annual_mix();
    let mut pairs: Vec<(EnergySource, f64)> = Vec::new();
    for source in EnergySource::ALL {
        let shifted = base.share(source).value() + typed.get(&source).copied().unwrap_or(0.0);
        let shifted = shifted.max(0.0);
        if shifted > 0.0 {
            pairs.push((source, shifted));
        }
    }
    thirstyflops_grid::EnergyMix::normalized(&pairs).map_err(|e| {
        invalid(format!(
            "\"grid.mix_delta\" drives every share to zero on {region}: {e}"
        ))
    })
}

// ------------------------------------------------------------- parsing

fn as_obj<'a>(v: &'a Value, ctx: &str) -> Result<&'a [(String, Value)], ScenarioError> {
    v.as_object()
        .ok_or_else(|| invalid(format!("{ctx} must be a JSON object")))
}

/// Field lookup treating an explicit `null` as absent (so canonical
/// re-renderings, which spell defaults as `null`, re-parse cleanly).
fn field<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .filter(|v| !matches!(v, Value::Null))
}

fn require<'a>(
    pairs: &'a [(String, Value)],
    key: &str,
    ctx: &str,
) -> Result<&'a Value, ScenarioError> {
    field(pairs, key).ok_or_else(|| invalid(format!("{ctx} is missing required key {key:?}")))
}

/// The strictness core: every key must be known.
fn check_keys(pairs: &[(String, Value)], allowed: &[&str], ctx: &str) -> Result<(), ScenarioError> {
    for (k, _) in pairs {
        if !allowed.contains(&k.as_str()) {
            return Err(invalid(format!(
                "unknown key {k:?} in {ctx} (allowed: {allowed:?})"
            )));
        }
    }
    let mut seen: Vec<&str> = Vec::with_capacity(pairs.len());
    for (k, _) in pairs {
        if seen.contains(&k.as_str()) {
            return Err(invalid(format!("duplicate key {k:?} in {ctx}")));
        }
        seen.push(k.as_str());
    }
    Ok(())
}

fn parse_string(v: &Value, ctx: &str) -> Result<String, ScenarioError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(invalid(format!("\"{ctx}\" must be a string"))),
    }
}

fn parse_f64(v: &Value, ctx: &str) -> Result<f64, ScenarioError> {
    v.as_f64()
        .filter(|x| x.is_finite())
        .ok_or_else(|| invalid(format!("\"{ctx}\" must be a finite number")))
}

/// Re-keys a parsed mix map onto canonical source slugs, so the
/// canonical spec rendering — and therefore the HTTP body-cache key —
/// does not depend on how the file spelled the sources. Duplicates
/// after collapsing are rejected by [`parse_source_map`].
fn canonical_source_keys(
    map: BTreeMap<String, f64>,
    ctx: &str,
) -> Result<BTreeMap<String, f64>, ScenarioError> {
    Ok(parse_source_map(&map, ctx)?
        .into_iter()
        .map(|(source, value)| (source.slug().to_string(), value))
        .collect())
}

fn parse_map(v: &Value, ctx: &str) -> Result<BTreeMap<String, f64>, ScenarioError> {
    let pairs = as_obj(v, ctx)?;
    let mut map = BTreeMap::new();
    for (k, val) in pairs {
        let parsed = parse_f64(val, &format!("{ctx}.{k}"))?;
        if map.insert(k.clone(), parsed).is_some() {
            return Err(invalid(format!("duplicate key {k:?} in {ctx}")));
        }
    }
    Ok(map)
}

/// Parses the `"overrides"` object (strict).
pub(crate) fn parse_overrides(v: &Value) -> Result<Overrides, ScenarioError> {
    let pairs = as_obj(v, "\"overrides\"")?;
    check_keys(
        pairs,
        &[
            "climate",
            "grid",
            "pue",
            "nodes",
            "wsi",
            "reclaimed",
            "water_price",
            "fleet_upgrade",
        ],
        "\"overrides\"",
    )?;
    let mut out = Overrides::default();
    if let Some(v) = field(pairs, "climate") {
        let p = as_obj(v, "\"climate\"")?;
        check_keys(p, &["preset", "wue_scale"], "\"climate\"")?;
        out.climate = Some(ClimateOverride {
            preset: field(p, "preset")
                .map(|v| {
                    let raw = parse_string(v, "climate.preset")?;
                    let preset: ClimatePreset = raw.parse().map_err(
                        |e: thirstyflops_weather::ParseClimatePresetError| invalid(e.to_string()),
                    )?;
                    Ok::<String, ScenarioError>(preset.slug().to_string())
                })
                .transpose()?,
            wue_scale: field(p, "wue_scale")
                .map(|v| parse_f64(v, "climate.wue_scale"))
                .transpose()?,
        });
    }
    if let Some(v) = field(pairs, "grid") {
        let p = as_obj(v, "\"grid\"")?;
        check_keys(p, &["region", "mix", "mix_delta"], "\"grid\"")?;
        out.grid = Some(GridOverride {
            region: field(p, "region")
                .map(|v| {
                    let raw = parse_string(v, "grid.region")?;
                    let region: RegionId =
                        raw.parse()
                            .map_err(|e: thirstyflops_grid::ParseRegionIdError| {
                                invalid(e.to_string())
                            })?;
                    Ok::<String, ScenarioError>(region.slug().to_string())
                })
                .transpose()?,
            mix: field(p, "mix")
                .map(|v| canonical_source_keys(parse_map(v, "grid.mix")?, "grid.mix"))
                .transpose()?,
            mix_delta: field(p, "mix_delta")
                .map(|v| canonical_source_keys(parse_map(v, "grid.mix_delta")?, "grid.mix_delta"))
                .transpose()?,
        });
    }
    if let Some(v) = field(pairs, "pue") {
        out.pue = Some(parse_f64(v, "pue")?);
    }
    if let Some(v) = field(pairs, "nodes") {
        let n = v
            .as_u64()
            .ok_or_else(|| invalid("\"nodes\" must be a positive integer"))?;
        out.nodes =
            Some(u32::try_from(n).map_err(|_| invalid(format!("\"nodes\" is out of range: {n}")))?);
    }
    if let Some(v) = field(pairs, "wsi") {
        let p = as_obj(v, "\"wsi\"")?;
        check_keys(p, &["site", "field"], "\"wsi\"")?;
        out.wsi = Some(WsiOverride {
            site: field(p, "site")
                .map(|v| parse_f64(v, "wsi.site"))
                .transpose()?,
            field: field(p, "field")
                .map(|v| parse_string(v, "wsi.field"))
                .transpose()?,
        });
    }
    if let Some(v) = field(pairs, "reclaimed") {
        let p = as_obj(v, "\"reclaimed\"")?;
        check_keys(p, &["fraction", "wsi", "usd_per_kl"], "\"reclaimed\"")?;
        out.reclaimed = Some(ReclaimedOverride {
            fraction: parse_f64(
                require(p, "fraction", "\"reclaimed\"")?,
                "reclaimed.fraction",
            )?,
            wsi: parse_f64(require(p, "wsi", "\"reclaimed\"")?, "reclaimed.wsi")?,
            usd_per_kl: field(p, "usd_per_kl")
                .map(|v| parse_f64(v, "reclaimed.usd_per_kl"))
                .transpose()?,
        });
    }
    if let Some(v) = field(pairs, "water_price") {
        let p = as_obj(v, "\"water_price\"")?;
        check_keys(
            p,
            &["base_usd_per_kl", "monthly_multiplier"],
            "\"water_price\"",
        )?;
        out.water_price = Some(WaterPriceOverride {
            base_usd_per_kl: parse_f64(
                require(p, "base_usd_per_kl", "\"water_price\"")?,
                "water_price.base_usd_per_kl",
            )?,
            monthly_multiplier: field(p, "monthly_multiplier")
                .map(|v| {
                    v.as_array()
                        .ok_or_else(|| {
                            invalid("\"water_price.monthly_multiplier\" must be an array")
                        })?
                        .iter()
                        .enumerate()
                        .map(|(i, m)| parse_f64(m, &format!("water_price.monthly_multiplier[{i}]")))
                        .collect::<Result<Vec<f64>, _>>()
                })
                .transpose()?,
        });
    }
    if let Some(v) = field(pairs, "fleet_upgrade") {
        let p = as_obj(v, "\"fleet_upgrade\"")?;
        check_keys(p, &["lifetime_years", "upgrades"], "\"fleet_upgrade\"")?;
        let steps = require(p, "upgrades", "\"fleet_upgrade\"")?
            .as_array()
            .ok_or_else(|| invalid("\"fleet_upgrade.upgrades\" must be an array"))?
            .iter()
            .map(parse_upgrade_step)
            .collect::<Result<Vec<UpgradeStep>, _>>()?;
        out.fleet_upgrade = Some(FleetUpgradeOverride {
            lifetime_years: parse_f64(
                require(p, "lifetime_years", "\"fleet_upgrade\"")?,
                "fleet_upgrade.lifetime_years",
            )?,
            upgrades: steps,
        });
    }
    Ok(out)
}

fn parse_upgrade_step(v: &Value) -> Result<UpgradeStep, ScenarioError> {
    let p = as_obj(v, "an upgrade step")?;
    check_keys(p, &["year", "gpu"], "an upgrade step")?;
    let g = as_obj(require(p, "gpu", "an upgrade step")?, "\"gpu\"")?;
    check_keys(
        g,
        &[
            "name",
            "die_mm2",
            "process_nm",
            "tdp_watts",
            "yield_rate",
            "fab",
        ],
        "\"gpu\"",
    )?;
    Ok(UpgradeStep {
        year: parse_f64(require(p, "year", "an upgrade step")?, "year")?,
        gpu: GpuSpec {
            name: parse_string(require(g, "name", "\"gpu\"")?, "gpu.name")?,
            die_mm2: parse_f64(require(g, "die_mm2", "\"gpu\"")?, "gpu.die_mm2")?,
            process_nm: require(g, "process_nm", "\"gpu\"")?
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| invalid("\"gpu.process_nm\" must be a positive integer"))?,
            tdp_watts: parse_f64(require(g, "tdp_watts", "\"gpu\"")?, "gpu.tdp_watts")?,
            yield_rate: field(g, "yield_rate")
                .map(|v| parse_f64(v, "gpu.yield_rate"))
                .transpose()?,
            fab: field(g, "fab")
                .map(|v| parse_string(v, "gpu.fab"))
                .transpose()?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let spec = ScenarioSpec::from_json(r#"{"name": "noop", "base": "polaris"}"#).unwrap();
        assert_eq!(spec.name, "noop");
        assert_eq!(spec.base, "polaris");
        assert_eq!(spec.seed, DEFAULT_SEED);
        assert_eq!(spec.overrides, Overrides::default());
    }

    #[test]
    fn aliases_collapse_into_the_canonical_form() {
        let a = ScenarioSpec::from_json(
            r#"{"name": "x", "base": "Marconi100",
                "overrides": {"climate": {"preset": "Oak Ridge"},
                              "grid": {"region": "Northern Illinois"}}}"#,
        )
        .unwrap();
        let b = ScenarioSpec::from_json(
            r#"{"name": "x", "base": "marconi", "seed": 2023,
                "overrides": {"climate": {"preset": "oakridge"},
                              "grid": {"region": "northern-illinois"}}}"#,
        )
        .unwrap();
        assert_eq!(a.canonical_json(), b.canonical_json());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn unknown_keys_are_hard_errors_at_every_level() {
        for (text, needle) in [
            (r#"{"name": "x", "base": "polaris", "extra": 1}"#, "extra"),
            (
                r#"{"name": "x", "base": "polaris", "overrides": {"climat": {}}}"#,
                "climat",
            ),
            (
                r#"{"name": "x", "base": "polaris",
                    "overrides": {"climate": {"wue_scal": 0.8}}}"#,
                "wue_scal",
            ),
            (
                r#"{"name": "x", "base": "polaris",
                    "overrides": {"reclaimed": {"fraction": 0.2, "wsi": 0.1, "price": 1}}}"#,
                "price",
            ),
        ] {
            let err = ScenarioSpec::from_json(text).unwrap_err();
            assert!(err.message().contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn out_of_range_values_are_rejected() {
        for text in [
            r#"{"name": "x", "base": "polaris", "overrides": {"pue": 0.8}}"#,
            r#"{"name": "x", "base": "polaris", "overrides": {"nodes": 0}}"#,
            r#"{"name": "x", "base": "polaris", "overrides": {"climate": {"wue_scale": -1.0}}}"#,
            r#"{"name": "x", "base": "polaris", "overrides": {"wsi": {"site": 1.5}}}"#,
            r#"{"name": "x", "base": "polaris",
                "overrides": {"reclaimed": {"fraction": 1.2, "wsi": 0.1}}}"#,
            r#"{"name": "x", "base": "polaris",
                "overrides": {"grid": {"mix": {"coal": 0.7}}}}"#,
            r#"{"name": "x", "base": "polaris",
                "overrides": {"grid": {"mix": {"plutonium": 1.0}}}}"#,
            r#"{"name": "x", "base": "colossus"}"#,
            r#"{"name": "x", "base": "polaris",
                "overrides": {"water_price": {"base_usd_per_kl": 2.0,
                                              "monthly_multiplier": [1, 2, 3]}}}"#,
        ] {
            assert!(ScenarioSpec::from_json(text).is_err(), "{text}");
        }
    }

    #[test]
    fn mix_keys_canonicalize_and_case_duplicates_are_rejected() {
        // "Hydro" and "hydro" must mean the same thing everywhere: the
        // canonical rendering (and so the HTTP cache key) collapses the
        // spelling, and evaluation sees the canonical slug.
        let spelled = ScenarioSpec::from_json(
            r#"{"name": "d", "base": "marconi",
                "overrides": {"grid": {"mix_delta": {"Hydro": -0.15, "Gas": 0.15}}}}"#,
        )
        .unwrap();
        let canonical = ScenarioSpec::from_json(
            r#"{"name": "d", "base": "marconi",
                "overrides": {"grid": {"mix_delta": {"hydro": -0.15, "gas": 0.15}}}}"#,
        )
        .unwrap();
        assert_eq!(spelled, canonical);
        assert_eq!(spelled.canonical_json(), canonical.canonical_json());
        // Case-variant duplicates of one source are a hard error, not a
        // silently-last-one-wins map.
        let err = ScenarioSpec::from_json(
            r#"{"name": "d", "base": "fugaku",
                "overrides": {"grid": {"mix": {"Coal": 0.5, "coal": 0.5}}}}"#,
        )
        .unwrap_err();
        assert!(err.message().contains("duplicate source"), "{err}");
    }

    #[test]
    fn wsi_fields_resolve_including_non_us() {
        assert!((resolve_wsi_field("state:AZ").unwrap() - 0.92).abs() < 1e-12);
        assert!((resolve_wsi_field("country:India").unwrap() - 0.75).abs() < 1e-12);
        assert!(resolve_wsi_field("state:ZZ").is_err());
        assert!(resolve_wsi_field("planet:Mars").is_err());
    }

    #[test]
    fn axes_in_a_run_spec_point_to_the_sweep_command() {
        let err = ScenarioSpec::from_json(
            r#"{"name": "x", "base": "polaris", "axes": {"pue": [1.1, 1.2]}}"#,
        )
        .unwrap_err();
        assert!(err.message().contains("sweep"), "{err}");
    }

    #[test]
    fn fleet_upgrade_requires_gpus_and_inside_years() {
        let fugaku = r#"{"name": "x", "base": "fugaku",
            "overrides": {"fleet_upgrade": {"lifetime_years": 6,
                "upgrades": [{"year": 3, "gpu": {"name": "G", "die_mm2": 800,
                                                  "process_nm": 5, "tdp_watts": 500}}]}}}"#;
        assert!(ScenarioSpec::from_json(fugaku)
            .unwrap_err()
            .message()
            .contains("has none"));
        let late = r#"{"name": "x", "base": "polaris",
            "overrides": {"fleet_upgrade": {"lifetime_years": 4,
                "upgrades": [{"year": 6, "gpu": {"name": "G", "die_mm2": 800,
                                                  "process_nm": 5, "tdp_watts": 500}}]}}}"#;
        assert!(ScenarioSpec::from_json(late).is_err());
    }

    #[test]
    fn explicit_null_reads_as_absent() {
        let spec = ScenarioSpec::from_json(
            r#"{"name": "x", "description": null, "base": "polaris",
                "overrides": {"climate": {"preset": "kobe", "wue_scale": null}}}"#,
        )
        .unwrap();
        assert_eq!(spec.description, None);
        assert_eq!(spec.overrides.climate.as_ref().unwrap().wue_scale, None);
        // The canonical rendering re-parses to the same spec.
        let reparsed = ScenarioSpec::from_json(&spec.canonical_json()).unwrap();
        assert_eq!(spec, reparsed);
    }
}
