//! Chunked streaming sweep evaluation over the batched K-lane kernel.
//!
//! The scalar sweep path expands every combination, simulates each, and
//! materializes every row. This module streams instead: combination
//! indices are processed in fixed-size chunks (rayon fan-out over the
//! chunks), each chunk resolves its rows' annual aggregates through one
//! `core::batch` kernel call — deduplicated on an aggregate key, so a
//! 10⁵-cell sweep whose axes mostly reinterpret the same series runs a
//! few dozen kernel passes — and, under `top_n`, each chunk folds its
//! rows into a bounded [`TopN`] heap before the next chunk starts. The
//! memory floor is one chunk plus the heap, never the cross product.
//!
//! **Determinism.** Rows depend only on their combination index, the
//! aggregate cache is keyed on values (racing recomputes are
//! bit-identical), chunk results merge in chunk order, and the top-N
//! kept set is push-order-independent — so sweep reports are
//! byte-identical at every thread count and chunk size, batched or
//! scalar (`docs/CONCURRENCY.md`, enforced by `tests/batch.rs` and
//! `./ci.sh batch-smoke`).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rayon::prelude::*;
use thirstyflops_catalog::{SystemId, SystemSpec};
use thirstyflops_core::batch::{self as kernel, BatchContext, LaneAggregates, LaneRequest, TopN};
use thirstyflops_grid::RegionId;
use thirstyflops_obs::span;
use thirstyflops_obs::Counter;

use crate::engine::{self, AggregateInputs};
use crate::spec::{Overrides, ScenarioError, ScenarioSpec};
use crate::sweep::{rank_key, SweepReport, SweepRow, SweepSpec, DEFAULT_RANK_METRIC};

/// Combinations per chunk: small enough that a materialized chunk is
/// noise next to the heap, large enough that per-chunk overhead (lock
/// traffic, kernel launch) amortizes. Fixed — results must not depend
/// on it, and `tests/batch.rs` checks they don't by comparing against
/// the scalar path, which chunks identically but never batches.
const CHUNK: usize = 512;

/// Sweep cells (combinations) streamed through chunk evaluation.
/// Deterministic: the expansion size is a pure function of the spec.
fn cells_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        thirstyflops_obs::registry::counter(
            "thirstyflops_sweep_cells_total",
            "Sweep combinations streamed through chunk evaluation.",
        )
    })
}

/// Sweep chunks evaluated (`⌈cells / 512⌉` per sweep).
fn chunks_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        thirstyflops_obs::registry::counter(
            "thirstyflops_sweep_chunks_total",
            "Fixed-size sweep chunks evaluated.",
        )
    })
}

/// State shared by every chunk of one sweep evaluation.
struct Shared<'a> {
    sweep: &'a SweepSpec,
    base_spec: SystemSpec,
    baseline: engine::ScenarioMetrics,
    rank_metric: &'a str,
    ctx: BatchContext,
    /// Region → annual (EWF mean, carbon mean) of the unscaled series.
    region_means: Mutex<HashMap<RegionId, (f64, f64)>>,
}

impl Shared<'_> {
    fn means_of(&self, region: RegionId) -> (f64, f64) {
        if let Some(m) = self.region_means.lock().expect("means lock").get(&region) {
            return *m;
        }
        let m = self.ctx.region_means(region);
        self.region_means
            .lock()
            .expect("means lock")
            .insert(region, m);
        m
    }
}

/// One combination, resolved up to (but not including) its aggregates.
struct PreparedRow {
    name: String,
    transformed: SystemSpec,
    overrides: Overrides,
    request: LaneRequest,
    /// Everything the kernel result depends on: the energy key plus the
    /// (scaled) series identities. Rows sharing a key share one lane.
    agg_key: String,
}

fn prepare(shared: &Shared<'_>, index: usize) -> Result<PreparedRow, ScenarioError> {
    let spec: ScenarioSpec = shared.sweep.combination(index)?;
    let transformed = engine::apply_spec_overrides(&shared.base_spec, &spec.overrides)?;
    let wue_scale = spec.overrides.climate.as_ref().and_then(|c| c.wue_scale);
    let factors = match spec.overrides.grid.as_ref() {
        Some(g) => {
            let (ewf_mean, carbon_mean) = shared.means_of(transformed.region);
            engine::grid_factors(g, &transformed, ewf_mean, carbon_mean)?
        }
        None => None,
    };
    let (ewf_scale, carbon_scale) = match factors {
        Some((k_ewf, k_ci)) => (Some(k_ewf), Some(k_ci)),
        None => (None, None),
    };
    let agg_key = format!(
        "{}|{:?}|{:?}|{:?}|{:?}|{:?}",
        kernel::energy_key(&transformed, spec.seed),
        transformed.climate,
        wue_scale.map(f64::to_bits),
        transformed.region,
        ewf_scale.map(f64::to_bits),
        carbon_scale.map(f64::to_bits),
    );
    Ok(PreparedRow {
        name: spec.name,
        transformed: transformed.clone(),
        overrides: spec.overrides,
        request: LaneRequest {
            spec: transformed,
            seed: spec.seed,
            wue_scale,
            ewf_scale,
            carbon_scale,
        },
        agg_key,
    })
}

/// A chunk's contribution: all its rows (plain sweeps) or its bounded
/// top-N fold (streaming sweeps).
enum ChunkOutput {
    All(Vec<SweepRow>),
    Top(TopN<SweepRow>),
}

fn evaluate_chunk(
    shared: &Shared<'_>,
    start: usize,
    end: usize,
) -> Result<ChunkOutput, ScenarioError> {
    let _span = span::span(span::SWEEP_CHUNK);
    chunks_counter().inc();
    cells_counter().add((end - start) as u64);
    let mut prepared = Vec::with_capacity(end - start);
    for index in start..end {
        prepared.push(prepare(shared, index)?);
    }

    // Each chunk dedups and resolves its own rows' aggregates in one
    // kernel call, first-appearance order. Chunks used to share a
    // cross-chunk memo map, but which chunk resolved a key first then
    // depended on scheduling — making the kernel's lane/pass counters
    // (and span invocation counts) thread-count-dependent. Per-chunk
    // resolution makes them pure functions of the expansion; the cost is
    // re-aggregating keys that span a chunk boundary, a few hundred
    // cheap lane reductions on the flagship 10⁵-cell sweep (the
    // expensive workload simulations stay deduplicated by the batch
    // context's energy cache). See `docs/PERFORMANCE.md`.
    let mut aggregates: HashMap<String, Arc<LaneAggregates>> = HashMap::new();
    if kernel::enabled() {
        let mut missing: Vec<&PreparedRow> = Vec::new();
        for row in &prepared {
            if !missing.iter().any(|m| m.agg_key == row.agg_key) {
                missing.push(row);
            }
        }
        let requests: Vec<LaneRequest> = missing.iter().map(|m| m.request.clone()).collect();
        let resolved = shared.ctx.aggregate(&requests);
        for (row, agg) in missing.iter().zip(resolved) {
            aggregates.insert(row.agg_key.clone(), Arc::new(agg));
        }
    }

    let mut all = Vec::with_capacity(if shared.sweep.top_n.is_some() {
        0
    } else {
        prepared.len()
    });
    let mut top = shared
        .sweep
        .top_n
        .map(|n| TopN::new(usize::try_from(n).expect("top_n fits usize")));
    for (offset, row) in prepared.into_iter().enumerate() {
        let scenario = if kernel::enabled() {
            let agg = Arc::clone(
                aggregates
                    .get(&row.agg_key)
                    .expect("chunk resolved its aggregates"),
            );
            let inputs = AggregateInputs {
                energy_kwh: agg.energy_kwh,
                direct: agg.direct_l,
                indirect: agg.indirect_per_pue_l * row.transformed.pue.value(),
                carbon_g: agg.carbon_g,
                mean_wue: agg.mean_wue,
                mean_ewf: agg.mean_ewf,
                mean_carbon: agg.mean_carbon,
                monthly_direct: agg.monthly_direct_l,
            };
            engine::finish_metrics(&row.transformed, &row.overrides, &inputs)
        } else {
            // Scalar reference path (`--no-batch`): per-row simulation
            // and fused scalar kernels, still streamed and still
            // top-N-bounded.
            engine::metrics(&row.transformed, shared.sweep.seed, &row.overrides)?
        };
        let deltas = engine::deltas(&shared.baseline, &scenario);
        let sweep_row = SweepRow {
            name: row.name,
            scenario,
            deltas,
        };
        match &mut top {
            Some(heap) => {
                let key = rank_key(&sweep_row.scenario, shared.rank_metric);
                heap.push(key, (start + offset) as u64, sweep_row);
            }
            None => all.push(sweep_row),
        }
    }
    Ok(match top {
        Some(heap) => ChunkOutput::Top(heap),
        None => ChunkOutput::All(all),
    })
}

/// The streaming sweep evaluator behind [`crate::sweep::evaluate_sweep`]
/// (which owns the ceiling / rank-metric guards).
pub(crate) fn evaluate_sweep_streaming(sweep: &SweepSpec) -> Result<SweepReport, ScenarioError> {
    let base_id: SystemId = sweep.base.parse().map_err(|e| {
        ScenarioError::Invalid(format!("{e} — `thirstyflops systems` lists the catalog"))
    })?;
    let base_spec = SystemSpec::reference(base_id);
    // The shared baseline: the scalar path, exactly as `evaluate` would
    // compute it (one row — batching buys nothing).
    let baseline = engine::metrics(&base_spec, sweep.seed, &Overrides::default())?;
    let rank_metric = sweep.rank_by.as_deref().unwrap_or(DEFAULT_RANK_METRIC);
    let shared = Shared {
        sweep,
        base_spec,
        baseline,
        rank_metric,
        ctx: BatchContext::new(),
        region_means: Mutex::new(HashMap::new()),
    };
    let total = sweep.combination_count();
    let starts: Vec<usize> = (0..total).step_by(CHUNK).collect();
    // Capture the active trace (if any) before fanning out: worker
    // threads have no trace context of their own, so each chunk
    // re-attaches under the span open at this capture point. The
    // parent edge is fixed here, not by scheduling, which is what
    // keeps the span-tree shape thread-count-independent
    // (`docs/CONCURRENCY.md` rule seven).
    let trace_handle = thirstyflops_obs::trace::handle();
    let outputs: Vec<Result<ChunkOutput, ScenarioError>> = starts
        .par_iter()
        .map(|&start| {
            let _trace = trace_handle.as_ref().map(|h| h.attach());
            evaluate_chunk(&shared, start, (start + CHUNK).min(total))
        })
        .collect();

    // Merge in chunk (= expansion) order; the first error in expansion
    // order wins, as the eager path's sequential fold did.
    let mut all_rows = Vec::new();
    let mut top: Option<TopN<SweepRow>> = None;
    for output in outputs {
        match output? {
            ChunkOutput::All(mut rows) => all_rows.append(&mut rows),
            ChunkOutput::Top(heap) => match &mut top {
                Some(merged) => merged.merge(heap),
                None => top = Some(heap),
            },
        }
    }
    let rows = match top {
        Some(heap) => heap.into_sorted().into_iter().map(|e| e.item).collect(),
        None => all_rows,
    };
    Ok(SweepReport {
        name: sweep.name.clone(),
        base: sweep.base.clone(),
        seed: sweep.seed,
        fingerprint: sweep.fingerprint(),
        scenario_count: total as u64,
        top_n: sweep.top_n,
        rank_by: sweep.top_n.map(|_| rank_metric.to_string()),
        baseline: shared.baseline.clone(),
        rows,
    })
}
