//! Scenario evaluation: pure transforms on simulation inputs, metrics
//! over the memoized telemetry year, and deltas against the baseline.
//!
//! Evaluation is built to be *cache-shaped*: every override that changes
//! the simulated physics (climate preset, grid region, PUE, node count,
//! site WSI) is applied as a [`SystemSpec`] transform, so the year flows
//! through the memoized `SystemYear::simulate_spec` — a sweep of 25
//! scenarios over one base system re-simulates only what actually
//! differs, and repeated scenarios are `Arc` clones. Overrides that
//! reinterpret the simulated series (WUE scaling, mix changes, prices,
//! scarcity weighting, lifecycle projection) are pure post-processing on
//! the shared year. Cached and uncached evaluation are byte-identical
//! (`tests/scenario.rs`).

use thirstyflops_catalog::SystemSpec;
use thirstyflops_core::embodied::EmbodiedBreakdown;
use thirstyflops_core::lifecycle::gpu_upgrade_water;
use thirstyflops_core::{OperationalBreakdown, SystemYear};
use thirstyflops_grid::EnergyMix;
use thirstyflops_timeseries::{HourlySeries, Month};
use thirstyflops_units::Pue;

use crate::spec::{
    effective_region, shifted_mix, GridOverride, Overrides, ScenarioError, ScenarioSpec,
    DEFAULT_POTABLE_USD_PER_KL, DEFAULT_RECLAIMED_USD_PER_KL,
};

/// Everything the engine measures for one evaluated configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioMetrics {
    /// Annual IT energy, kWh.
    pub energy_kwh: f64,
    /// Annual direct (cooling) water, liters.
    pub direct_water_l: f64,
    /// Annual indirect (generation) water, liters.
    pub indirect_water_l: f64,
    /// Annual operational water (direct + indirect), liters.
    pub operational_water_l: f64,
    /// WSI-weighted operational water, liters (split indices: site — or
    /// its reclaimed blend — on the direct part, plant fleet on the
    /// indirect part).
    pub scarcity_adjusted_water_l: f64,
    /// Annual operational carbon, kg CO₂.
    pub carbon_kg: f64,
    /// Annual water bill for the direct (purchased) supply, USD.
    pub water_cost_usd: f64,
    /// Annual mean WUE, L/kWh.
    pub mean_wue_l_per_kwh: f64,
    /// Annual mean EWF, L/kWh.
    pub mean_ewf_l_per_kwh: f64,
    /// Annual mean water intensity `WUE + PUE·EWF`, L/kWh.
    pub mean_wi_l_per_kwh: f64,
    /// Annual mean carbon intensity, gCO₂/kWh.
    pub mean_ci_g_per_kwh: f64,
    /// Lifecycle projection — present only under a `fleet_upgrade`
    /// override.
    pub lifecycle: Option<LifecycleMetrics>,
}

/// The lifecycle view a `fleet_upgrade` override adds.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LifecycleMetrics {
    /// Service life, years.
    pub lifetime_years: f64,
    /// One-time embodied water of the initial build, liters.
    pub embodied_l: f64,
    /// Additional embodied water from the scheduled upgrades, liters.
    pub upgrade_embodied_l: f64,
    /// Operational water over the whole life, liters.
    pub lifetime_operational_l: f64,
    /// Lifetime total (embodied + upgrades + operational), liters.
    pub lifetime_total_l: f64,
    /// Embodied (incl. upgrades) share of the lifetime total.
    pub embodied_share: f64,
    /// Lifetime-amortized water intensity, L/kWh.
    pub amortized_wi_l_per_kwh: f64,
}

/// Scenario-minus-baseline deltas (positive = the scenario uses more).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioDeltas {
    /// Operational water delta, liters.
    pub operational_water_l: f64,
    /// Operational water delta, percent of baseline.
    pub operational_water_pct: f64,
    /// Scarcity-adjusted water delta, liters.
    pub scarcity_adjusted_water_l: f64,
    /// Scarcity-adjusted water delta, percent of baseline.
    pub scarcity_adjusted_water_pct: f64,
    /// Carbon delta, kg CO₂.
    pub carbon_kg: f64,
    /// Carbon delta, percent of baseline.
    pub carbon_pct: f64,
    /// Water-bill delta, USD.
    pub water_cost_usd: f64,
    /// Water-bill delta, percent of baseline.
    pub water_cost_pct: f64,
}

/// One evaluated scenario: baseline, scenario, deltas.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioOutcome {
    /// Scenario name from the spec.
    pub name: String,
    /// Canonical base-system slug.
    pub base: String,
    /// Telemetry seed.
    pub seed: u64,
    /// Fingerprint of the canonical spec (16 hex digits).
    pub fingerprint: String,
    /// The base system with no overrides (default water pricing).
    pub baseline: ScenarioMetrics,
    /// The base system with the spec's overrides applied.
    pub scenario: ScenarioMetrics,
    /// Scenario minus baseline.
    pub deltas: ScenarioDeltas,
}

/// An A-vs-B comparison of two evaluated scenarios.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioComparison {
    /// The first scenario's full outcome.
    pub a: ScenarioOutcome,
    /// The second scenario's full outcome.
    pub b: ScenarioOutcome,
    /// `b.scenario` minus `a.scenario`.
    pub b_minus_a: ScenarioDeltas,
}

/// Evaluates one scenario against its own base system.
pub fn evaluate(spec: &ScenarioSpec) -> Result<ScenarioOutcome, ScenarioError> {
    spec.validate()?;
    let base_id = spec.base_id()?;
    let base_spec = SystemSpec::reference(base_id);
    let baseline = metrics(&base_spec, spec.seed, &Overrides::default())?;
    let transformed = apply_spec_overrides(&base_spec, &spec.overrides)?;
    let scenario = metrics(&transformed, spec.seed, &spec.overrides)?;
    let deltas = deltas(&baseline, &scenario);
    Ok(ScenarioOutcome {
        name: spec.name.clone(),
        base: spec.base.clone(),
        seed: spec.seed,
        fingerprint: spec.fingerprint(),
        baseline,
        scenario,
        deltas,
    })
}

/// Evaluates two scenarios and compares their results (B minus A). The
/// bases may differ — the comparison is between the *scenario* states.
pub fn compare(a: &ScenarioSpec, b: &ScenarioSpec) -> Result<ScenarioComparison, ScenarioError> {
    let oa = evaluate(a)?;
    let ob = evaluate(b)?;
    let b_minus_a = deltas(&oa.scenario, &ob.scenario);
    Ok(ScenarioComparison {
        a: oa,
        b: ob,
        b_minus_a,
    })
}

/// The `SystemSpec` transform: every override that changes the simulated
/// physics, applied as plain field replacement so the memoized
/// `(spec fingerprint, seed)` key captures exactly what changed.
pub fn apply_spec_overrides(base: &SystemSpec, o: &Overrides) -> Result<SystemSpec, ScenarioError> {
    let mut spec = base.clone();
    if let Some(c) = &o.climate {
        if let Some(preset) = &c.preset {
            spec.climate =
                preset
                    .parse()
                    .map_err(|e: thirstyflops_weather::ParseClimatePresetError| {
                        ScenarioError::Invalid(e.to_string())
                    })?;
        }
    }
    if let Some(g) = &o.grid {
        spec.region = effective_region(base, g)?;
    }
    if let Some(p) = o.pue {
        spec.pue = Pue::new(p).map_err(|e| ScenarioError::Invalid(format!("\"pue\": {e}")))?;
    }
    if let Some(n) = o.nodes {
        spec.nodes = n;
    }
    if let Some(w) = &o.wsi {
        let value = match (&w.site, &w.field) {
            (Some(v), None) => *v,
            (None, Some(f)) => crate::spec::resolve_wsi_field(f)?,
            _ => {
                return Err(ScenarioError::Invalid(
                    "\"wsi\" needs exactly one of \"site\" or \"field\"".into(),
                ))
            }
        };
        spec.site_wsi = thirstyflops_units::WaterScarcityIndex::new(value)
            .map_err(|e| ScenarioError::Invalid(format!("\"wsi\": {e}")))?;
    }
    Ok(spec)
}

/// EWF/carbon scale factors for a grid mix override (see
/// `docs/SCENARIOS.md` for the semantics: `mix` pins the annual mean to
/// the replacement mix's factors, `mix_delta` shifts the simulated level
/// by the ratio of shifted-to-base annual-mix factors). Takes the
/// annual means of the *unscaled* region series — the scalar path reads
/// them off the simulated year, the batched path off its per-region
/// mean cache; the grid sub-simulation is deterministic, so the bits
/// agree either way.
pub(crate) fn grid_factors(
    g: &GridOverride,
    sys: &SystemSpec,
    ewf_mean: f64,
    carbon_mean: f64,
) -> Result<Option<(f64, f64)>, ScenarioError> {
    if let Some(mix) = &g.mix {
        let pairs = parse_mix_pairs(mix)?;
        let target = EnergyMix::normalized(&pairs)
            .map_err(|e| ScenarioError::Invalid(format!("\"grid.mix\": {e}")))?;
        return Ok(Some((
            target.ewf().value() / ewf_mean,
            target.carbon_intensity().value() / carbon_mean,
        )));
    }
    if let Some(delta) = &g.mix_delta {
        let region = effective_region(sys, g)?;
        let base = thirstyflops_grid::GridRegion::preset(region).annual_mix();
        let shifted = shifted_mix(region, delta)?;
        return Ok(Some((
            shifted.ewf().value() / base.ewf().value(),
            shifted.carbon_intensity().value() / base.carbon_intensity().value(),
        )));
    }
    Ok(None)
}

fn parse_mix_pairs(
    mix: &std::collections::BTreeMap<String, f64>,
) -> Result<Vec<(thirstyflops_grid::EnergySource, f64)>, ScenarioError> {
    // The shared canonicalizer collapses name spellings and rejects
    // duplicates, so a code-built map behaves like a parsed one.
    Ok(crate::spec::parse_source_map(mix, "grid.mix")?
        .into_iter()
        .collect())
}

/// Every annual reduction a configuration's metrics derive from its
/// hourly series. The scalar path fills this with the fused
/// `HourlySeries` kernels over one simulated year; the batched path
/// (`crate::batch`) fills it from a `core::batch` lane — bit-identical
/// per the `tests/batch.rs` differential suite. Everything downstream
/// ([`finish_metrics`]) is cheap scalar arithmetic shared verbatim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct AggregateInputs {
    /// `Σ energy`, kWh.
    pub energy_kwh: f64,
    /// `Σ energy·wue'`, liters (post WUE scaling).
    pub direct: f64,
    /// `Σ energy·ewf' · PUE`, liters (post mix scaling).
    pub indirect: f64,
    /// `Σ energy·carbon'`, grams.
    pub carbon_g: f64,
    /// Annual mean of the (scaled) WUE series, L/kWh.
    pub mean_wue: f64,
    /// Annual mean of the (scaled) EWF series, L/kWh.
    pub mean_ewf: f64,
    /// Annual mean of the (scaled) carbon series, gCO₂/kWh.
    pub mean_carbon: f64,
    /// Monthly `Σ energy·wue'` (January first), liters.
    pub monthly_direct: [f64; 12],
}

/// Measures one configuration: simulate (memoized), post-process the
/// series per the overrides, and aggregate. Pure — identical inputs
/// produce identical bytes at any thread count, cached or not. This is
/// the scalar reference path; sweeps route through the batched kernel
/// unless `--no-batch` pins them here.
pub(crate) fn metrics(
    sys: &SystemSpec,
    seed: u64,
    o: &Overrides,
) -> Result<ScenarioMetrics, ScenarioError> {
    let year = SystemYear::simulate_spec(sys.clone(), seed);
    let pue = sys.pue;

    // Series reinterpretation: WUE scaling and grid-mix factors.
    let wue: HourlySeries = match o.climate.as_ref().and_then(|c| c.wue_scale) {
        Some(k) => year.wue.scale(k),
        None => year.wue.clone(),
    };
    let (ewf, carbon) = match o.grid.as_ref() {
        Some(g) => match grid_factors(g, sys, year.ewf.mean(), year.carbon.mean())? {
            Some((k_ewf, k_ci)) => (year.ewf.scale(k_ewf), year.carbon.scale(k_ci)),
            None => (year.ewf.clone(), year.carbon.clone()),
        },
        None => (year.ewf.clone(), year.carbon.clone()),
    };

    let breakdown = OperationalBreakdown::from_series(&year.energy, &wue, pue, &ewf);
    let monthly = year.energy.mul(&wue).monthly_sum();
    let mut monthly_direct = [0.0; 12];
    for (i, month) in Month::ALL.iter().enumerate() {
        monthly_direct[i] = monthly.get(*month);
    }
    let agg = AggregateInputs {
        energy_kwh: year.energy.total(),
        direct: breakdown.direct.value(),
        indirect: breakdown.indirect.value(),
        carbon_g: year.energy.dot(&carbon),
        mean_wue: wue.mean(),
        mean_ewf: ewf.mean(),
        mean_carbon: carbon.mean(),
        monthly_direct,
    };
    Ok(finish_metrics(sys, o, &agg))
}

/// The shared metric arithmetic on top of the annual aggregates:
/// scarcity weighting, seasonal pricing, the lifecycle projection.
/// Scalar and batched evaluation both end here, so the two paths cannot
/// diverge downstream of the kernels.
pub(crate) fn finish_metrics(
    sys: &SystemSpec,
    o: &Overrides,
    a: &AggregateInputs,
) -> ScenarioMetrics {
    let direct = a.direct;
    let indirect = a.indirect;
    let operational = direct + indirect;
    let energy_kwh = a.energy_kwh;
    let carbon_kg = a.carbon_g / 1000.0;

    // Scarcity weighting: the direct component sees the site WSI — or
    // its blend with the reclaimed source — the indirect component sees
    // the plant fleet's aggregate index (Fig. 9 split form).
    let reclaimed_fraction = o.reclaimed.as_ref().map_or(0.0, |r| r.fraction);
    let site_wsi = sys.site_wsi.value();
    let direct_wsi = match o.reclaimed.as_ref() {
        Some(r) => (1.0 - r.fraction) * site_wsi + r.fraction * r.wsi,
        None => site_wsi,
    };
    let indirect_wsi = sys.fleet.indirect_wsi().value();
    let adjusted = direct * direct_wsi + indirect * indirect_wsi;

    // Water bill: monthly direct water through the seasonal potable
    // schedule, with the reclaimed share priced at its own flat rate.
    // Indirect water is embedded in electricity, not purchased.
    let potable_base = o
        .water_price
        .as_ref()
        .map_or(DEFAULT_POTABLE_USD_PER_KL, |wp| wp.base_usd_per_kl);
    let reclaimed_price = o
        .reclaimed
        .as_ref()
        .and_then(|r| r.usd_per_kl)
        .unwrap_or(DEFAULT_RECLAIMED_USD_PER_KL);
    let mut cost = 0.0;
    for (i, monthly_l) in a.monthly_direct.iter().enumerate() {
        let multiplier = o
            .water_price
            .as_ref()
            .and_then(|wp| wp.monthly_multiplier.as_ref())
            .map_or(1.0, |m| m[i]);
        let kl = monthly_l / 1000.0;
        cost += kl
            * ((1.0 - reclaimed_fraction) * potable_base * multiplier
                + reclaimed_fraction * reclaimed_price);
    }

    let lifecycle = o.fleet_upgrade.as_ref().map(|fu| {
        let embodied = EmbodiedBreakdown::for_system(sys).total().value();
        let upgrade: f64 = fu
            .upgrades
            .iter()
            .map(|step| {
                let processor = step
                    .gpu
                    .to_processor_spec()
                    .expect("validated upgrade steps convert");
                gpu_upgrade_water(sys, &processor).value()
            })
            .sum();
        let lifetime_operational = operational * fu.lifetime_years;
        let total = embodied + upgrade + lifetime_operational;
        LifecycleMetrics {
            lifetime_years: fu.lifetime_years,
            embodied_l: embodied,
            upgrade_embodied_l: upgrade,
            lifetime_operational_l: lifetime_operational,
            lifetime_total_l: total,
            embodied_share: (embodied + upgrade) / total,
            amortized_wi_l_per_kwh: total / (energy_kwh * fu.lifetime_years),
        }
    });

    ScenarioMetrics {
        energy_kwh,
        direct_water_l: direct,
        indirect_water_l: indirect,
        operational_water_l: operational,
        scarcity_adjusted_water_l: adjusted,
        carbon_kg,
        water_cost_usd: cost,
        mean_wue_l_per_kwh: a.mean_wue,
        mean_ewf_l_per_kwh: a.mean_ewf,
        mean_wi_l_per_kwh: a.mean_wue + sys.pue.value() * a.mean_ewf,
        mean_ci_g_per_kwh: a.mean_carbon,
        lifecycle,
    }
}

fn pct(delta: f64, base: f64) -> f64 {
    if base.abs() > 1e-12 {
        100.0 * delta / base
    } else {
        0.0
    }
}

/// `b` minus `a`, absolute and as percent of `a`.
pub fn deltas(a: &ScenarioMetrics, b: &ScenarioMetrics) -> ScenarioDeltas {
    ScenarioDeltas {
        operational_water_l: b.operational_water_l - a.operational_water_l,
        operational_water_pct: pct(
            b.operational_water_l - a.operational_water_l,
            a.operational_water_l,
        ),
        scarcity_adjusted_water_l: b.scarcity_adjusted_water_l - a.scarcity_adjusted_water_l,
        scarcity_adjusted_water_pct: pct(
            b.scarcity_adjusted_water_l - a.scarcity_adjusted_water_l,
            a.scarcity_adjusted_water_l,
        ),
        carbon_kg: b.carbon_kg - a.carbon_kg,
        carbon_pct: pct(b.carbon_kg - a.carbon_kg, a.carbon_kg),
        water_cost_usd: b.water_cost_usd - a.water_cost_usd,
        water_cost_pct: pct(b.water_cost_usd - a.water_cost_usd, a.water_cost_usd),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    fn eval(text: &str) -> ScenarioOutcome {
        evaluate(&ScenarioSpec::from_json(text).unwrap()).unwrap()
    }

    #[test]
    fn empty_overrides_produce_zero_deltas() {
        let o = eval(r#"{"name": "noop", "base": "polaris"}"#);
        assert_eq!(o.deltas.operational_water_l, 0.0);
        assert_eq!(o.deltas.carbon_kg, 0.0);
        assert_eq!(o.deltas.water_cost_usd, 0.0);
        assert_eq!(o.baseline, o.scenario);
        assert!(o.baseline.operational_water_l > 0.0);
        assert!(o.baseline.water_cost_usd > 0.0);
    }

    #[test]
    fn wue_scale_moves_only_the_direct_component() {
        let o = eval(
            r#"{"name": "dry", "base": "polaris",
                "overrides": {"climate": {"wue_scale": 0.5}}}"#,
        );
        let ratio = o.scenario.direct_water_l / o.baseline.direct_water_l;
        assert!((ratio - 0.5).abs() < 1e-9, "direct halves: {ratio}");
        assert_eq!(o.scenario.indirect_water_l, o.baseline.indirect_water_l);
        assert!(o.deltas.operational_water_l < 0.0);
        assert!(o.deltas.water_cost_usd < 0.0, "cheaper water bill");
    }

    #[test]
    fn all_coal_mix_raises_carbon_and_pins_the_mean() {
        let o = eval(
            r#"{"name": "coal", "base": "fugaku",
                "overrides": {"grid": {"mix": {"coal": 1.0}}}}"#,
        );
        assert!(o.deltas.carbon_pct > 50.0, "{}", o.deltas.carbon_pct);
        let coal_ci = thirstyflops_grid::EnergySource::Coal
            .carbon_intensity()
            .value();
        assert!(
            (o.scenario.mean_ci_g_per_kwh - coal_ci).abs() < 1e-6 * coal_ci,
            "mean pinned to the replacement mix"
        );
    }

    #[test]
    fn spelled_mix_keys_evaluate_identically_to_canonical_ones() {
        // Regression: "Hydro" used to validate but miss the slug lookup,
        // silently dropping the delta.
        let spelled = eval(
            r#"{"name": "d", "base": "marconi",
                "overrides": {"grid": {"mix_delta": {"Hydro": -0.15, "Gas": 0.15}}}}"#,
        );
        let canonical = eval(
            r#"{"name": "d", "base": "marconi",
                "overrides": {"grid": {"mix_delta": {"hydro": -0.15, "gas": 0.15}}}}"#,
        );
        assert_eq!(spelled.scenario, canonical.scenario);
        assert!(spelled.deltas.operational_water_pct < -30.0);
    }

    #[test]
    fn code_built_specs_with_spelled_mix_keys_are_handled() {
        // fig14-style code-built specs bypass from_json; the engine's
        // own canonicalization must still collapse spellings (and a
        // duplicate-after-collapse fails in validate, so the serve
        // handler's post-validation evaluate cannot panic).
        use std::collections::BTreeMap;
        let mut spec = ScenarioSpec::new("coal", thirstyflops_catalog::SystemId::Fugaku, 2023);
        spec.overrides.grid = Some(crate::spec::GridOverride {
            region: None,
            mix: Some(BTreeMap::from([("Coal".to_string(), 1.0)])),
            mix_delta: None,
        });
        let outcome = evaluate(&spec).unwrap();
        assert!(outcome.deltas.carbon_pct > 50.0);
        let mut dup = spec.clone();
        dup.overrides.grid.as_mut().unwrap().mix = Some(BTreeMap::from([
            ("Coal".to_string(), 0.5),
            ("coal".to_string(), 0.5),
        ]));
        let err = evaluate(&dup).unwrap_err();
        assert!(err.message().contains("duplicate source"), "{err}");
    }

    #[test]
    fn hydro_curtailment_delta_cuts_water_raises_carbon() {
        // Drought: a fifth of Marconi's hydro replaced by gas.
        let o = eval(
            r#"{"name": "drought", "base": "marconi",
                "overrides": {"grid": {"mix_delta": {"hydro": -0.15, "gas": 0.15}}}}"#,
        );
        assert!(
            o.deltas.operational_water_l < 0.0,
            "hydro EWF leaves the mix"
        );
        assert!(o.deltas.carbon_kg > 0.0, "gas fills the gap");
    }

    #[test]
    fn reclaimed_supply_lowers_scarcity_and_cost_not_volume() {
        let o = eval(
            r#"{"name": "reuse", "base": "elcapitan",
                "overrides": {"reclaimed": {"fraction": 0.4, "wsi": 0.05,
                                             "usd_per_kl": 0.4}}}"#,
        );
        assert_eq!(
            o.scenario.operational_water_l, o.baseline.operational_water_l,
            "volume is unchanged — only scarcity and price move"
        );
        assert!(o.deltas.scarcity_adjusted_water_l < 0.0);
        assert!(o.deltas.water_cost_usd < 0.0);
    }

    #[test]
    fn seasonal_pricing_charges_more_in_expensive_months() {
        let flat = eval(
            r#"{"name": "flat", "base": "frontier",
                "overrides": {"water_price": {"base_usd_per_kl": 2.0}}}"#,
        );
        let seasonal = eval(
            r#"{"name": "summer-peak", "base": "frontier",
                "overrides": {"water_price": {"base_usd_per_kl": 2.0,
                    "monthly_multiplier": [1,1,1,1,1.5,2,2,2,1.5,1,1,1]}}}"#,
        );
        assert!(
            seasonal.scenario.water_cost_usd > flat.scenario.water_cost_usd,
            "summer multipliers raise the bill"
        );
    }

    #[test]
    fn wsi_field_selection_rescales_adjusted_water() {
        let arizona = eval(
            r#"{"name": "az", "base": "frontier",
                "overrides": {"wsi": {"field": "state:AZ"}}}"#,
        );
        assert!(
            arizona.deltas.scarcity_adjusted_water_l > 0.0,
            "Oak Ridge (0.10) to Arizona (0.92) raises effective water"
        );
        let india = eval(
            r#"{"name": "in", "base": "fugaku",
                "overrides": {"wsi": {"field": "country:India"}}}"#,
        );
        assert!(india.deltas.scarcity_adjusted_water_l > 0.0);
    }

    #[test]
    fn fleet_upgrade_adds_lifecycle_view() {
        let o = eval(
            r#"{"name": "upg", "base": "polaris",
                "overrides": {"fleet_upgrade": {"lifetime_years": 6,
                    "upgrades": [{"year": 3, "gpu": {"name": "Next-gen", "die_mm2": 814,
                                                      "process_nm": 4, "tdp_watts": 350}}]}}}"#,
        );
        assert!(o.baseline.lifecycle.is_none());
        let lc = o.scenario.lifecycle.as_ref().unwrap();
        assert!(lc.upgrade_embodied_l > 1e5, "{}", lc.upgrade_embodied_l);
        assert!(
            (lc.lifetime_total_l
                - (lc.embodied_l + lc.upgrade_embodied_l + lc.lifetime_operational_l))
                .abs()
                < 1e-6
        );
        assert!(lc.embodied_share > 0.0 && lc.embodied_share < 1.0);
    }

    #[test]
    fn site_relocation_composes_climate_grid_and_wsi() {
        let o = eval(
            r#"{"name": "move", "base": "polaris",
                "overrides": {"climate": {"preset": "livermore"},
                              "grid": {"region": "california"},
                              "wsi": {"field": "state:CA"}}}"#,
        );
        assert_ne!(o.scenario.mean_ewf_l_per_kwh, o.baseline.mean_ewf_l_per_kwh);
        assert_ne!(o.scenario.mean_wue_l_per_kwh, o.baseline.mean_wue_l_per_kwh);
        assert_ne!(
            o.scenario.scarcity_adjusted_water_l,
            o.baseline.scarcity_adjusted_water_l
        );
    }

    #[test]
    fn compare_reports_b_minus_a() {
        let a = ScenarioSpec::from_json(r#"{"name": "a", "base": "polaris"}"#).unwrap();
        let b = ScenarioSpec::from_json(
            r#"{"name": "b", "base": "polaris",
                "overrides": {"climate": {"wue_scale": 2.0}}}"#,
        )
        .unwrap();
        let cmp = compare(&a, &b).unwrap();
        assert!(cmp.b_minus_a.operational_water_l > 0.0);
        assert_eq!(
            cmp.b_minus_a.operational_water_l,
            cmp.b.scenario.operational_water_l - cmp.a.scenario.operational_water_l
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let text = r#"{"name": "d", "base": "marconi",
            "overrides": {"grid": {"mix_delta": {"hydro": -0.1, "gas": 0.1}},
                          "climate": {"wue_scale": 1.1}}}"#;
        let a = serde_json::to_string(&eval(text)).unwrap();
        let b = serde_json::to_string(&eval(text)).unwrap();
        assert_eq!(a, b);
    }
}
