//! `thirstyflops_scenario` — the declarative scenario engine.
//!
//! The paper's central contribution is counterfactual water accounting:
//! what does a supercomputer's footprint look like under a different
//! grid, climate, siting, supply contract, or upgrade schedule? This
//! crate turns those what-ifs into **data**: a scenario is a named,
//! JSON-serializable spec of composable overrides on a cataloged base
//! system, and the engine evaluates single scenarios, A-vs-B
//! comparisons, and cartesian sweeps through the memoized simulation
//! substrate (`core::simcache`) with rayon fan-out.
//!
//! * [`ScenarioSpec`] / [`spec`] — the schema, its strict parser
//!   (unknown keys and out-of-range values are hard errors), and the
//!   canonical rendering that keys the HTTP body cache;
//! * [`engine`] — pure evaluation: [`evaluate`], [`compare`], metrics
//!   (water, scarcity-adjusted water, carbon, cost) and deltas against
//!   the un-overridden baseline;
//! * [`sweep`] — `"axes"` cartesian expansion and the parallel
//!   [`evaluate_sweep`], which streams combinations in chunks through
//!   the batched K-lane kernel (`core::batch`); a `"top_n"` field keeps
//!   only the best rows (ranked on `"rank_by"`, ascending) and lifts
//!   the expansion ceiling from 4096 to 1 048 576 cells.
//!
//! Determinism contract (enforced by `tests/scenario.rs`): the same
//! spec produces byte-identical JSON at every thread count and with the
//! simulation cache on or off. See `docs/SCENARIOS.md` for the schema
//! and override semantics, `examples/scenarios/` for the built-in spec
//! library.
//!
//! ```
//! use thirstyflops_scenario::{evaluate, ScenarioSpec};
//!
//! let spec = ScenarioSpec::from_json(
//!     r#"{"name": "drought", "base": "marconi",
//!         "overrides": {"grid": {"mix_delta": {"hydro": -0.15, "gas": 0.15}}}}"#,
//! )
//! .expect("spec is valid");
//! let outcome = evaluate(&spec).expect("engine evaluates");
//! assert!(outcome.deltas.operational_water_l < 0.0); // less hydro, less water
//! assert!(outcome.deltas.carbon_kg > 0.0); // more gas, more carbon
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod engine;
pub mod spec;
pub mod sweep;

pub use engine::{
    compare, evaluate, LifecycleMetrics, ScenarioComparison, ScenarioDeltas, ScenarioMetrics,
    ScenarioOutcome,
};
pub use spec::{
    ClimateOverride, FleetUpgradeOverride, GpuSpec, GridOverride, Overrides, ReclaimedOverride,
    ScenarioError, ScenarioSpec, UpgradeStep, WaterPriceOverride, WsiOverride,
    DEFAULT_POTABLE_USD_PER_KL, DEFAULT_RECLAIMED_USD_PER_KL, DEFAULT_SEED,
};
pub use sweep::{
    evaluate_sweep, Axis, SweepReport, SweepRow, SweepSpec, DEFAULT_RANK_METRIC, MAX_SCENARIOS,
    MAX_SCENARIOS_TOP_N, RANK_METRICS,
};
