//! Rendering load reports: the human table and `BENCH_serve.json`.
//!
//! `BENCH_serve.json` follows the same convention as
//! `BENCH_simulate.json` (see `crates/bench`): the `baseline` object of
//! an existing file is preserved **verbatim** — it records the one-shot
//! (pre-keep-alive) discipline the first time the bench ran — and only
//! `current` (the keep-alive replay) is rewritten, so current-vs-baseline
//! is the tracked trajectory across PRs. On a 1-CPU container the
//! interesting columns are correctness (mismatches must be 0) and the
//! connection-setup work keep-alive removes, never parallel speedup.

use std::path::Path;

use crate::run::{ChaosStats, LoadReport};
use crate::LoadError;

/// Renders the human-readable summary table for one run.
pub fn human_table(report: &LoadReport) -> String {
    let mut out = format!(
        "loadgen: mix \"{}\" (seed {}), {} requests over {} {} connection{}{}\n\
         {:.1} req/s, {:.1} ms elapsed, {} mismatch{}, {} error{}\n",
        report.mix,
        report.seed,
        report.requests,
        report.connections,
        report.discipline,
        if report.connections == 1 { "" } else { "s" },
        if report.workers > 0 {
            format!(", {} server workers", report.workers)
        } else {
            String::new()
        },
        report.requests_per_sec,
        report.elapsed_micros as f64 / 1e3,
        report.mismatches,
        if report.mismatches == 1 { "" } else { "es" },
        report.errors,
        if report.errors == 1 { "" } else { "s" },
    );
    out.push_str(&format!(
        "{:<18} {:>9} {:>10} {:>10} {:>10}\n",
        "endpoint", "requests", "p50 µs", "p90 µs", "p99 µs"
    ));
    for e in &report.endpoints {
        out.push_str(&format!(
            "{:<18} {:>9} {:>10} {:>10} {:>10}\n",
            e.endpoint, e.requests, e.p50_micros, e.p90_micros, e.p99_micros
        ));
    }
    for sample in &report.mismatch_samples {
        out.push_str(&format!("  ! {sample}\n"));
    }
    out
}

/// Renders the chaos error/retry/recovery accounting as a
/// human-readable block appended after [`human_table`]'s output.
pub fn chaos_table(stats: &ChaosStats) -> String {
    let mut out = format!(
        "chaos: {} attempts, {} retried, {} faulted (500: {}, 503: {}, 504: {}), \
         {} transport error{}, {} unrecovered\n",
        stats.attempts,
        stats.retried,
        stats.faulted,
        stats.status_500,
        stats.status_503,
        stats.status_504,
        stats.transport_errors,
        if stats.transport_errors == 1 { "" } else { "s" },
        stats.unrecovered,
    );
    for site in &stats.fault_sites {
        out.push_str(&format!("  fault {:<18} {:>6}\n", site.site, site.injected));
    }
    out
}

/// Renders the chaos accounting as pretty JSON. Every field is
/// deterministic (no timings), so two same-seed replays — at any worker
/// count — must render byte-identically; `./ci.sh chaos-smoke` diffs
/// this exact text across runs.
pub fn chaos_json(stats: &ChaosStats) -> Result<String, LoadError> {
    serde_json::to_string_pretty(stats).map_err(|e| LoadError::Io(format!("render chaos: {e}")))
}

/// Merges a `"chaos"` section into an existing `BENCH_serve.json`,
/// preserving every other top-level key (`note`, `unit`, `baseline`,
/// `current`) verbatim. Returns the rendered text.
pub fn write_chaos_bench(path: &Path, stats: &ChaosStats) -> Result<String, LoadError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| LoadError::Io(format!("read {}: {e}", path.display())))?;
    let value: serde::Value = serde_json::from_str(&text)
        .map_err(|e| LoadError::Io(format!("parse {}: {e}", path.display())))?;
    let object = value
        .as_object()
        .ok_or_else(|| LoadError::Io(format!("{} is not a JSON object", path.display())))?;
    let mut report = String::from("{\n");
    for (key, val) in object.iter().filter(|(k, _)| k != "chaos") {
        let rendered = serde_json::to_string(val).expect("re-render parsed JSON");
        report.push_str(&format!("  \"{key}\": {rendered},\n"));
    }
    let chaos = serde_json::to_string(stats).map_err(|e| LoadError::Io(format!("render: {e}")))?;
    report.push_str(&format!("  \"chaos\": {chaos}\n}}\n"));
    // Validate before writing so a formatting bug can't corrupt the
    // tracked file.
    let parsed: serde::Value =
        serde_json::from_str(&report).map_err(|e| LoadError::Io(format!("invalid report: {e}")))?;
    drop(parsed);
    std::fs::write(path, &report)
        .map_err(|e| LoadError::Io(format!("write {}: {e}", path.display())))?;
    Ok(report)
}

/// One side (`baseline` or `current`) of `BENCH_serve.json`.
#[derive(Debug, serde::Serialize)]
struct BenchSide {
    discipline: String,
    requests: u64,
    connections: u64,
    workers: u64,
    requests_per_sec: f64,
    mismatches: u64,
    endpoints: Vec<BenchEndpoint>,
}

#[derive(Debug, serde::Serialize)]
struct BenchEndpoint {
    endpoint: String,
    requests: u64,
    p50_micros: u64,
    p99_micros: u64,
}

fn side(report: &LoadReport) -> BenchSide {
    BenchSide {
        discipline: report.discipline.clone(),
        requests: report.requests,
        connections: report.connections,
        workers: report.workers,
        // One decimal is plenty for a tracked trajectory file.
        requests_per_sec: (report.requests_per_sec * 10.0).round() / 10.0,
        mismatches: report.mismatches,
        endpoints: report
            .endpoints
            .iter()
            .map(|e| BenchEndpoint {
                endpoint: e.endpoint.clone(),
                requests: e.requests,
                p50_micros: e.p50_micros,
                p99_micros: e.p99_micros,
            })
            .collect(),
    }
}

/// Extracts the `"baseline"` object of an existing `BENCH_serve.json`.
fn previous_baseline(path: &Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let value: serde::Value = serde_json::from_str(&text).ok()?;
    value
        .as_object()?
        .iter()
        .find(|(k, _)| k == "baseline")
        .map(|(_, v)| serde_json::to_string(v).expect("re-render parsed JSON"))
}

/// Writes `BENCH_serve.json`: `baseline` = the recorded one-shot
/// numbers (preserved verbatim once recorded; `oneshot` only seeds the
/// very first file), `current` = this run's keep-alive numbers. Returns
/// the rendered text.
pub fn write_bench_json(
    path: &Path,
    oneshot: &LoadReport,
    keepalive: &LoadReport,
) -> Result<String, LoadError> {
    let current = serde_json::to_string(&side(keepalive))
        .map_err(|e| LoadError::Io(format!("render current: {e}")))?;
    let fresh = serde_json::to_string(&side(oneshot))
        .map_err(|e| LoadError::Io(format!("render baseline: {e}")))?;
    let baseline = previous_baseline(path).unwrap_or(fresh);
    let report = format!(
        "{{\n  \"note\": \"deterministic mix replay against the serving layer (1-CPU \
         container): mismatches must be 0 at any worker/connection count; baseline = \
         one-shot connections, current = keep-alive (docs/SERVING.md)\",\n  \
         \"unit\": \"microseconds (latency), requests/sec (throughput)\",\n  \
         \"baseline\": {baseline},\n  \"current\": {current}\n}}\n"
    );
    // Validate before writing so a formatting bug can't corrupt the
    // tracked file.
    let parsed: serde::Value =
        serde_json::from_str(&report).map_err(|e| LoadError::Io(format!("invalid report: {e}")))?;
    drop(parsed);
    std::fs::write(path, &report)
        .map_err(|e| LoadError::Io(format!("write {}: {e}", path.display())))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::EndpointLoad;

    fn report(discipline: &str, rps: f64) -> LoadReport {
        LoadReport {
            mix: "smoke".into(),
            seed: 2023,
            discipline: discipline.into(),
            requests: 100,
            connections: 4,
            workers: 2,
            rate: 0.0,
            elapsed_micros: 10_000,
            requests_per_sec: rps,
            mismatches: 0,
            errors: 0,
            endpoints: vec![EndpointLoad {
                endpoint: "healthz".into(),
                requests: 100,
                p50_micros: 63,
                p90_micros: 127,
                p99_micros: 255,
            }],
            mismatch_samples: vec![],
        }
    }

    #[test]
    fn human_table_names_the_mix_and_endpoints() {
        let text = human_table(&report("keep-alive", 123.4));
        assert!(text.contains("mix \"smoke\""), "{text}");
        assert!(text.contains("healthz"), "{text}");
        assert!(text.contains("0 mismatches"), "{text}");
    }

    #[test]
    fn bench_json_preserves_the_recorded_baseline() {
        let path = std::env::temp_dir().join(format!(
            "thirstyflops_bench_serve_test_{}_{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        // First run: the one-shot numbers become the baseline.
        let first = write_bench_json(
            &path,
            &report("one-shot", 50.0),
            &report("keep-alive", 100.0),
        )
        .unwrap();
        assert!(first.contains("\"one-shot\""), "{first}");
        assert!(first.contains("\"keep-alive\""), "{first}");

        // Second run with different numbers: baseline text survives
        // verbatim, current is rewritten.
        let second = write_bench_json(
            &path,
            &report("one-shot", 77.0),
            &report("keep-alive", 200.0),
        )
        .unwrap();
        assert!(second.contains("50"), "baseline preserved: {second}");
        assert!(!second.contains("77"), "fresh one-shot discarded: {second}");
        assert!(second.contains("200"), "current rewritten: {second}");
        let _ = std::fs::remove_file(&path);
    }
}
