//! `thirstyflops_loadgen` — a deterministic load-test harness for the
//! serving layer (`thirstyflops loadgen`, see `docs/SERVING.md`).
//!
//! The harness replays a recorded *request mix* — a JSON spec of
//! weighted endpoint templates ([`mix::MixSpec`]) — against either an
//! in-process server or a remote `--addr`, over N keep-alive
//! connections (or one connection per request in `--one-shot` mode),
//! optionally paced to a target request rate. It is a *correctness*
//! harness first and a throughput meter second:
//!
//! * every template's expected response is computed up front by calling
//!   the server's own pure handler (`serve::handlers::handle`) in
//!   process, and **every** replayed response body is compared against
//!   those bytes — a single mismatch fails the run. This is the
//!   determinism contract of `docs/CONCURRENCY.md` measured on the
//!   wire: byte-identical bodies at any `--workers` / `--connections`
//!   combination, keep-alive or one-shot, cached or not;
//! * per-endpoint latency is recorded client-side into the same
//!   log-bucket [`LatencyHistogram`](thirstyflops_serve::metrics) the
//!   server uses, so client p50/p90/p99 and the server's
//!   `/v1/cache/stats` quantiles share bucket edges;
//! * [`report::write_bench_json`] writes the throughput/latency table
//!   into `BENCH_serve.json` in the same baseline-vs-current format as
//!   `BENCH_simulate.json` (the recorded baseline — the one-shot
//!   discipline — is preserved verbatim; only `current` is rewritten).
//!
//! The request *plan* (which template each of the N requests uses, and
//! which connection carries it) is derived from the mix's seed with the
//! workspace's bit-stable `StdRng`, so two runs of the same mix replay
//! the identical request sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mix;
pub mod report;
pub mod run;

pub use mix::{MixSpec, Template};
pub use report::{chaos_json, chaos_table, human_table, write_bench_json};
pub use run::{
    run, run_with_stats, ChaosStats, EndpointLoad, FaultSiteCount, LoadReport, RunConfig,
};

/// Errors from parsing a mix spec or executing a load run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The mix spec is malformed (bad JSON, unknown key, bad value).
    Mix(String),
    /// The target could not be reached / a connection failed hard.
    Io(String),
    /// The target answered with bytes that do not parse as HTTP.
    Protocol(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Mix(msg) => write!(f, "mix spec: {msg}"),
            LoadError::Io(msg) => write!(f, "io: {msg}"),
            LoadError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}
