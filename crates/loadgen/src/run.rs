//! Plan building and load execution.
//!
//! A run has three deterministic inputs — the mix, the request count,
//! and the connection count — and one deterministic output: the bytes
//! of every response, which must equal the handler-computed expectation
//! regardless of pacing, worker count, or connection discipline. Only
//! the *latencies* vary run to run; the plan (request `i` uses template
//! `plan[i]` and rides connection `i % connections`, in order) never
//! does.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thirstyflops_serve::handlers::{self, AppState};
use thirstyflops_serve::http::{percent_decode, Request};
use thirstyflops_serve::metrics::{LatencyHistogram, ENDPOINTS};
use thirstyflops_serve::{router, Limits, Server, ServerConfig};

use crate::{LoadError, MixSpec};

/// How to execute a load run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Total requests to replay (the plan length).
    pub requests: usize,
    /// Concurrent client connections (clamped to `1..=requests`).
    pub connections: usize,
    /// Target request rate in requests/second across all connections;
    /// `0.0` = unpaced (each connection sends as fast as it can).
    pub rate: f64,
    /// `true` = keep-alive connections (the default discipline);
    /// `false` = a fresh connection with `Connection: close` per
    /// request (the pre-keep-alive baseline).
    pub keep_alive: bool,
    /// Worker threads for the in-process server (ignored with `addr`).
    pub workers: usize,
    /// Remote target `HOST:PORT`; `None` spawns an in-process server on
    /// an ephemeral port.
    pub addr: Option<String>,
    /// Client-side retry budget per request (`loadgen --retries N`,
    /// default 0 = off). With a budget, transport failures and
    /// well-formed JSON 500/503/504 responses are retried with capped
    /// exponential backoff, seeded jitter, and `Retry-After` honored —
    /// see `docs/ROBUSTNESS.md`.
    pub retries: u32,
    /// Chaos replay mode (`loadgen --chaos plan.json`): a 5xx that is
    /// well-formed JSON counts as an injected fault (not a mismatch),
    /// and the run reports [`ChaosStats`] alongside the load report.
    pub chaos: bool,
    /// Per-request deadline for the in-process server
    /// (`loadgen --request-timeout MS`; ignored with `addr`).
    pub request_timeout: Option<Duration>,
}

impl Default for RunConfig {
    /// 1000 unpaced requests over 4 keep-alive connections against an
    /// in-process 2-worker server; no retries, no chaos, no deadline.
    fn default() -> RunConfig {
        RunConfig {
            requests: 1000,
            connections: 4,
            rate: 0.0,
            keep_alive: true,
            workers: 2,
            addr: None,
            retries: 0,
            chaos: false,
            request_timeout: None,
        }
    }
}

/// One endpoint family's client-side measurements.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EndpointLoad {
    /// Endpoint family (`serve::metrics::ENDPOINTS`).
    pub endpoint: String,
    /// Requests replayed against this family.
    pub requests: u64,
    /// Client-side median round-trip, microseconds (log-bucket upper
    /// bound, same edges as the server's histograms).
    pub p50_micros: u64,
    /// Client-side 90th-percentile round-trip, microseconds.
    pub p90_micros: u64,
    /// Client-side 99th-percentile round-trip, microseconds.
    pub p99_micros: u64,
}

/// The outcome of one load run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LoadReport {
    /// Mix name.
    pub mix: String,
    /// Plan seed.
    pub seed: u64,
    /// `"keep-alive"` or `"one-shot"`.
    pub discipline: String,
    /// Requests replayed.
    pub requests: u64,
    /// Client connections used.
    pub connections: u64,
    /// In-process server workers (0 for a remote target).
    pub workers: u64,
    /// Target pacing rate (0 = unpaced).
    pub rate: f64,
    /// Wall-clock for the whole replay, microseconds.
    pub elapsed_micros: u64,
    /// Achieved throughput.
    pub requests_per_sec: f64,
    /// Responses whose status or body differed from the
    /// handler-computed expectation. Must be 0 on a healthy run — this
    /// is the determinism contract measured on the wire.
    pub mismatches: u64,
    /// Requests that failed at the transport level (connect/read).
    pub errors: u64,
    /// Per-endpoint measurements (families with traffic only).
    pub endpoints: Vec<EndpointLoad>,
    /// Up to [`MAX_SAMPLES`] human-readable mismatch/error descriptions.
    pub mismatch_samples: Vec<String>,
}

/// Cap on retained mismatch/error sample messages.
pub const MAX_SAMPLES: usize = 5;

/// One fault site's injection count, as reported by the installed
/// [`thirstyflops_faults`] plan.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultSiteCount {
    /// Site name (`thirstyflops_faults::SITE_NAMES`).
    pub site: String,
    /// Times the site fired during the run.
    pub injected: u64,
}

/// Error/retry/recovery accounting for a chaos replay. Every field
/// except the timings is a pure function of the fault plan and the
/// request plan — bit-identical across worker counts and same-seed
/// replays (`./ci.sh chaos-smoke` diffs them, `docs/ROBUSTNESS.md`).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ChaosStats {
    /// Request attempts sent on the wire (requests + retries).
    pub attempts: u64,
    /// Attempts that were retried (after backoff).
    pub retried: u64,
    /// Responses classified as injected faults: well-formed JSON
    /// 500/503/504.
    pub faulted: u64,
    /// Faulted responses with status 500 (injected handler panics).
    pub status_500: u64,
    /// Faulted responses with status 503 (sheds / draining).
    pub status_503: u64,
    /// Faulted responses with status 504 (deadline exceeded).
    pub status_504: u64,
    /// Attempts that failed at the transport level (injected accept
    /// drops, truncated writes, resets).
    pub transport_errors: u64,
    /// Requests that exhausted the retry budget without a verifiable
    /// response. Must be 0 for a chaos replay to pass.
    pub unrecovered: u64,
    /// Per-site injection counts from the installed fault plan (empty
    /// when no plan is installed).
    pub fault_sites: Vec<FaultSiteCount>,
}

/// A template compiled for the wire: prerendered request head/body plus
/// the expected response, computed by the server's own pure handler.
/// The head stops before the terminating blank line so each send can
/// append its per-request `X-Request-Id: lg-{i}` header — the id the
/// server must echo back (`docs/SERVING.md`).
#[derive(Debug)]
struct Prepared {
    head: String,
    body: Vec<u8>,
    method: String,
    target: String,
    expected_status: u16,
    expected_body: Arc<str>,
    label_idx: usize,
    verify: bool,
}

impl Prepared {
    /// Renders the wire bytes for plan entry `i`, injecting its trace id.
    fn wire(&self, i: usize) -> Vec<u8> {
        let mut wire = Vec::with_capacity(self.head.len() + 40 + self.body.len());
        wire.extend_from_slice(self.head.as_bytes());
        wire.extend_from_slice(format!("X-Request-Id: lg-{i}\r\n\r\n").as_bytes());
        wire.extend_from_slice(&self.body);
        wire
    }
}

/// Everything the client threads share.
struct Shared {
    plan: Vec<usize>,
    templates: Vec<Prepared>,
    connections: usize,
    rate: f64,
    keep_alive: bool,
    addr: String,
    start: Instant,
    hist: [LatencyHistogram; ENDPOINTS.len()],
    mismatches: AtomicU64,
    errors: AtomicU64,
    samples: Mutex<Vec<String>>,
    retries: u32,
    chaos: bool,
    /// Base for each thread's jitter RNG (`seed ^ thread_id`).
    jitter_seed: u64,
    attempts: AtomicU64,
    retried: AtomicU64,
    faulted: AtomicU64,
    status_500: AtomicU64,
    status_503: AtomicU64,
    status_504: AtomicU64,
    transport_errors: AtomicU64,
    unrecovered: AtomicU64,
}

/// One parsed response off the wire.
struct WireResponse {
    status: u16,
    body: String,
    /// The server sent `Connection: close` — honor it by reconnecting
    /// before the next request instead of racing a resend into a
    /// half-closed socket.
    close: bool,
    /// `Retry-After` header value in seconds, if present.
    retry_after: Option<u64>,
    /// The echoed `X-Request-Id`, if present. Must equal the id the
    /// request carried — a missing or wrong echo is a mismatch.
    request_id: Option<String>,
}

/// Builds the deterministic request plan: `requests` template indices
/// drawn by weight from the mix's seeded `StdRng`. Same mix + count ⇒
/// same plan, every run, every machine (the RNG shim is bit-stable).
pub fn build_plan(mix: &MixSpec, requests: usize) -> Vec<usize> {
    let total = mix.total_weight();
    let mut rng = StdRng::seed_from_u64(mix.seed);
    (0..requests)
        .map(|_| {
            let mut draw = rng.random_range(0..total);
            for (idx, t) in mix.templates.iter().enumerate() {
                if draw < t.weight {
                    return idx;
                }
                draw -= t.weight;
            }
            mix.templates.len() - 1 // unreachable: draw < total
        })
        .collect()
}

/// Compiles each template: request bytes for the chosen discipline plus
/// the expected response from an in-process call to the pure handler.
fn prepare(mix: &MixSpec, keep_alive: bool) -> Result<Vec<Prepared>, LoadError> {
    // A private state just for computing expectations — its caches never
    // touch the target server's.
    let verify_state = AppState::default();
    mix.templates
        .iter()
        .map(|t| {
            let (path_raw, query) = match t.target.split_once('?') {
                Some((p, q)) => (p, q),
                None => (t.target.as_str(), ""),
            };
            let path = percent_decode(path_raw).ok_or_else(|| {
                LoadError::Mix(format!("target {:?}: invalid percent-encoding", t.target))
            })?;
            let request = Request {
                method: t.method.clone(),
                path: path.clone(),
                query: query.to_string(),
                body: t.body.clone(),
                close: false,
                request_id: None,
            };
            let expected = handlers::handle(&request, &verify_state);
            let label = router::route(&path)
                .map(|r| r.metrics_label())
                .unwrap_or("other");
            let label_idx = ENDPOINTS
                .iter()
                .position(|e| *e == label)
                .unwrap_or(ENDPOINTS.len() - 1);

            let mut head = format!("{} {} HTTP/1.1\r\nHost: loadgen\r\n", t.method, t.target);
            if !t.body.is_empty() {
                head.push_str(&format!("Content-Length: {}\r\n", t.body.len()));
            }
            if !keep_alive {
                head.push_str("Connection: close\r\n");
            }
            // The blank line is appended per send, after the
            // per-request `X-Request-Id` header (`Prepared::wire`).

            Ok(Prepared {
                head,
                body: t.body.clone().into_bytes(),
                method: t.method.clone(),
                target: t.target.clone(),
                expected_status: expected.status,
                expected_body: expected.body,
                label_idx,
                verify: t.verify,
            })
        })
        .collect()
}

/// Executes a load run and reports throughput, tail latencies, and —
/// the part that must never be nonzero — body mismatches.
pub fn run(mix: &MixSpec, config: &RunConfig) -> Result<LoadReport, LoadError> {
    run_with_stats(mix, config).map(|(report, _)| report)
}

/// [`run`], also returning the chaos error/retry/recovery accounting
/// (all zeros on a fault-free, retry-free run).
pub fn run_with_stats(
    mix: &MixSpec,
    config: &RunConfig,
) -> Result<(LoadReport, ChaosStats), LoadError> {
    if config.requests == 0 {
        return Err(LoadError::Mix("requests must be ≥ 1".into()));
    }
    let templates = prepare(mix, config.keep_alive)?;
    let plan = build_plan(mix, config.requests);

    // In-process target unless an address was given. No connection
    // limit: the harness controls its own concurrency, and a shed 503
    // would count as a mismatch rather than measuring anything.
    let server = match &config.addr {
        Some(_) => None,
        None => Some(
            Server::bind(&ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: config.workers,
                max_connections: 0,
                limits: Limits {
                    request_timeout: config.request_timeout,
                    ..Limits::default()
                },
                ..ServerConfig::default()
            })
            .map_err(|e| LoadError::Io(format!("cannot start in-process server: {e}")))?,
        ),
    };
    let addr = match &config.addr {
        Some(a) => a.clone(),
        None => server
            .as_ref()
            .expect("in-process server")
            .local_addr()
            .to_string(),
    };

    let connections = config.connections.clamp(1, plan.len());
    let shared = Arc::new(Shared {
        plan,
        templates,
        connections,
        rate: config.rate,
        keep_alive: config.keep_alive,
        addr,
        start: Instant::now(),
        hist: std::array::from_fn(|_| LatencyHistogram::default()),
        mismatches: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        samples: Mutex::new(Vec::new()),
        retries: config.retries,
        chaos: config.chaos,
        jitter_seed: mix.seed,
        attempts: AtomicU64::new(0),
        retried: AtomicU64::new(0),
        faulted: AtomicU64::new(0),
        status_500: AtomicU64::new(0),
        status_503: AtomicU64::new(0),
        status_504: AtomicU64::new(0),
        transport_errors: AtomicU64::new(0),
        unrecovered: AtomicU64::new(0),
    });
    let threads: Vec<_> = (0..connections)
        .map(|t| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("loadgen-conn-{t}"))
                .spawn(move || client_thread(&shared, t))
                .expect("spawning a client thread")
        })
        .collect();
    for handle in threads {
        let _ = handle.join();
    }
    let elapsed = shared.start.elapsed();
    if let Some(server) = server {
        server.shutdown();
    }

    let endpoints = ENDPOINTS
        .iter()
        .zip(&shared.hist)
        .filter(|(_, h)| h.count() > 0)
        .map(|(endpoint, h)| EndpointLoad {
            endpoint: (*endpoint).to_string(),
            requests: h.count(),
            p50_micros: h.quantile(0.50),
            p90_micros: h.quantile(0.90),
            p99_micros: h.quantile(0.99),
        })
        .collect();
    let elapsed_micros = elapsed.as_micros().max(1) as u64;
    let mismatch_samples = shared.samples.lock().expect("samples lock").clone();
    let fault_sites = thirstyflops_faults::global()
        .map(|injector| {
            injector
                .injected_snapshot()
                .iter()
                .map(|(site, injected)| FaultSiteCount {
                    site: (*site).to_string(),
                    injected: *injected,
                })
                .collect()
        })
        .unwrap_or_default();
    let stats = ChaosStats {
        attempts: shared.attempts.load(Ordering::Relaxed),
        retried: shared.retried.load(Ordering::Relaxed),
        faulted: shared.faulted.load(Ordering::Relaxed),
        status_500: shared.status_500.load(Ordering::Relaxed),
        status_503: shared.status_503.load(Ordering::Relaxed),
        status_504: shared.status_504.load(Ordering::Relaxed),
        transport_errors: shared.transport_errors.load(Ordering::Relaxed),
        unrecovered: shared.unrecovered.load(Ordering::Relaxed),
        fault_sites,
    };
    let report = LoadReport {
        mix: mix.name.clone(),
        seed: mix.seed,
        discipline: if config.keep_alive {
            "keep-alive"
        } else {
            "one-shot"
        }
        .to_string(),
        requests: config.requests as u64,
        connections: connections as u64,
        workers: if config.addr.is_some() {
            0
        } else {
            config.workers as u64
        },
        rate: config.rate,
        elapsed_micros,
        requests_per_sec: config.requests as f64 / (elapsed_micros as f64 / 1e6),
        mismatches: shared.mismatches.load(Ordering::Relaxed),
        errors: shared.errors.load(Ordering::Relaxed),
        endpoints,
        mismatch_samples,
    };
    Ok((report, stats))
}

/// One connection's worth of the plan: indices `t, t + C, t + 2C, …`,
/// in order, down one socket (keep-alive) or one socket each
/// (one-shot).
fn client_thread(shared: &Shared, thread_id: usize) {
    let mut conn: Option<TcpStream> = None;
    let mut i = thread_id;
    // Backoff jitter: per-thread, derived from the mix seed, so two
    // same-seed replays sleep identically (and so threads don't retry
    // in lockstep).
    let retrying = shared.chaos || shared.retries > 0;
    let mut rng = StdRng::seed_from_u64(shared.jitter_seed ^ (thread_id as u64));
    while i < shared.plan.len() {
        let tmpl = &shared.templates[shared.plan[i]];
        if shared.rate > 0.0 {
            // Global pacing: request i is due at start + i/rate, so the
            // aggregate rate holds no matter how requests landed on
            // connections.
            let due = shared.start + Duration::from_secs_f64(i as f64 / shared.rate);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let started = Instant::now();
        if retrying {
            if let Some(resp) = perform_with_retries(&mut conn, shared, tmpl, i, &mut rng) {
                shared.hist[tmpl.label_idx].record(started.elapsed().as_micros() as u64);
                verify_response(shared, tmpl, i, &resp);
            }
        } else {
            match exchange(&mut conn, shared, tmpl, i) {
                Ok(resp) => {
                    shared.hist[tmpl.label_idx].record(started.elapsed().as_micros() as u64);
                    verify_response(shared, tmpl, i, &resp);
                }
                Err(e) => {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    push_sample(
                        shared,
                        format!("request #{i} {} {}: {e}", tmpl.method, tmpl.target),
                    );
                    conn = None;
                }
            }
        }
        if !shared.keep_alive {
            conn = None;
        }
        i += shared.connections;
    }
}

/// Compares one replayed response against the handler-computed
/// expectation, counting and sampling a mismatch. The `X-Request-Id`
/// echo is checked on every response — verified template or not — since
/// the echo is a transport-level contract, independent of whether the
/// body is deterministic. Samples name the trace id so a wire mismatch
/// can be joined against `/v1/trace` spans and `--log-json` lines.
fn verify_response(shared: &Shared, tmpl: &Prepared, i: usize, resp: &WireResponse) {
    let trace_id = format!("lg-{i}");
    if resp.request_id.as_deref() != Some(trace_id.as_str()) {
        shared.mismatches.fetch_add(1, Ordering::Relaxed);
        push_sample(
            shared,
            format!(
                "request #{i} {} {} trace={trace_id}: X-Request-Id echo {:?}, expected {trace_id:?}",
                tmpl.method, tmpl.target, resp.request_id,
            ),
        );
    }
    if tmpl.verify && (resp.status != tmpl.expected_status || resp.body != *tmpl.expected_body) {
        shared.mismatches.fetch_add(1, Ordering::Relaxed);
        push_sample(
            shared,
            format!(
                "request #{i} {} {} trace={trace_id}: status {} (expected {}), body {} bytes \
                 (expected {}), first difference at byte {}",
                tmpl.method,
                tmpl.target,
                resp.status,
                tmpl.expected_status,
                resp.body.len(),
                tmpl.expected_body.len(),
                resp.body
                    .bytes()
                    .zip(tmpl.expected_body.bytes())
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| resp.body.len().min(tmpl.expected_body.len())),
            ),
        );
    }
}

/// Drives one plan entry to a verifiable response under the retry
/// policy: transport failures and injected-fault responses (well-formed
/// JSON 500/503/504) are retried with capped exponential backoff,
/// seeded jitter, and `Retry-After` honored. Returns `None` when the
/// retry budget is exhausted (already counted as unrecovered) — the
/// fail-closed invariant means everything the caller verifies is either
/// a byte-identical 200 or a deliberate, well-formed error.
fn perform_with_retries(
    conn: &mut Option<TcpStream>,
    shared: &Shared,
    tmpl: &Prepared,
    i: usize,
    rng: &mut StdRng,
) -> Option<WireResponse> {
    let mut attempt: u32 = 0;
    loop {
        shared.attempts.fetch_add(1, Ordering::Relaxed);
        match try_exchange(conn, shared, tmpl, i) {
            Ok(resp) => {
                if resp.close {
                    // The server asked for close (drain, deadline, or
                    // post-panic): reconnect before the next send
                    // rather than racing bytes into a dying socket.
                    *conn = None;
                }
                let injected_fault = matches!(resp.status, 500 | 503 | 504)
                    && serde_json::from_str::<serde::Value>(&resp.body).is_ok();
                if injected_fault {
                    shared.faulted.fetch_add(1, Ordering::Relaxed);
                    match resp.status {
                        500 => &shared.status_500,
                        503 => &shared.status_503,
                        _ => &shared.status_504,
                    }
                    .fetch_add(1, Ordering::Relaxed);
                    if attempt < shared.retries {
                        attempt += 1;
                        shared.retried.fetch_add(1, Ordering::Relaxed);
                        backoff_sleep(rng, attempt, resp.retry_after);
                        continue;
                    }
                    shared.unrecovered.fetch_add(1, Ordering::Relaxed);
                    push_sample(
                        shared,
                        format!(
                            "request #{i} {} {}: still {} after {} retries",
                            tmpl.method, tmpl.target, resp.status, shared.retries
                        ),
                    );
                    return None;
                }
                return Some(resp);
            }
            Err(e) => {
                *conn = None;
                shared.transport_errors.fetch_add(1, Ordering::Relaxed);
                if attempt < shared.retries {
                    attempt += 1;
                    shared.retried.fetch_add(1, Ordering::Relaxed);
                    backoff_sleep(rng, attempt, None);
                    continue;
                }
                shared.errors.fetch_add(1, Ordering::Relaxed);
                shared.unrecovered.fetch_add(1, Ordering::Relaxed);
                push_sample(
                    shared,
                    format!(
                        "request #{i} {} {}: {e} (after {} retries)",
                        tmpl.method, tmpl.target, shared.retries
                    ),
                );
                return None;
            }
        }
    }
}

/// Sleeps before a retry: `10ms · 2^(attempt-1)` capped at 640 ms,
/// scaled by a seeded jitter factor in `[0.5, 1.0)`, raised to the
/// server's `Retry-After` if it asked for longer.
fn backoff_sleep(rng: &mut StdRng, attempt: u32, retry_after: Option<u64>) {
    let exp = attempt.saturating_sub(1).min(6);
    let base = Duration::from_millis(10 << exp);
    let mut delay = base.mul_f64(0.5 + 0.5 * rng.random::<f64>());
    if let Some(seconds) = retry_after {
        let asked = Duration::from_secs(seconds);
        if asked > delay {
            delay = asked;
        }
    }
    std::thread::sleep(delay);
}

fn push_sample(shared: &Shared, msg: String) {
    let mut samples = shared.samples.lock().expect("samples lock");
    if samples.len() < MAX_SAMPLES {
        samples.push(msg);
    }
}

/// Sends one request and reads its response (the legacy, retry-free
/// path). A failure on a *reused* keep-alive socket retries once on a
/// fresh one — the server may have idle-closed it during a pacing gap,
/// which is protocol-legal and not an error. The retry policy
/// ([`perform_with_retries`]) replaces this silent resend with explicit
/// accounting plus `Connection: close` honoring.
fn exchange(
    conn: &mut Option<TcpStream>,
    shared: &Shared,
    tmpl: &Prepared,
    i: usize,
) -> Result<WireResponse, LoadError> {
    let reused = conn.is_some();
    match try_exchange(conn, shared, tmpl, i) {
        Err(_) if reused => {
            *conn = None;
            try_exchange(conn, shared, tmpl, i)
        }
        other => other,
    }
}

fn try_exchange(
    conn: &mut Option<TcpStream>,
    shared: &Shared,
    tmpl: &Prepared,
    i: usize,
) -> Result<WireResponse, LoadError> {
    if conn.is_none() {
        let stream = TcpStream::connect(&shared.addr)
            .map_err(|e| LoadError::Io(format!("connect {}: {e}", shared.addr)))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| LoadError::Io(format!("set_read_timeout: {e}")))?;
        // Latency measurement must not include Nagle / delayed-ACK
        // stalls on the request side of a persistent connection.
        let _ = stream.set_nodelay(true);
        *conn = Some(stream);
    }
    let stream = conn.as_mut().expect("connection just ensured");
    stream
        .write_all(&tmpl.wire(i))
        .map_err(|e| LoadError::Io(format!("write: {e}")))?;
    read_response(stream)
}

/// Reads one `Content-Length`-framed response off the stream (the only
/// framing this API emits), including the connection disposition and
/// any `Retry-After` advice.
fn read_response(stream: &mut TcpStream) -> Result<WireResponse, LoadError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > 64 * 1024 {
            return Err(LoadError::Protocol("response head over 64 KiB".into()));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| LoadError::Io(format!("read head: {e}")))?;
        if n == 0 {
            return Err(LoadError::Protocol("connection closed mid-response".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| LoadError::Protocol("non-UTF-8 response head".into()))?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| LoadError::Protocol("malformed status line".into()))?;
    let mut length: Option<usize> = None;
    let mut close = false;
    let mut retry_after = None;
    let mut request_id = None;
    for (name, value) in lines.filter_map(|l| l.split_once(':')) {
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            length = value.parse().ok();
        } else if name.eq_ignore_ascii_case("connection") {
            close = value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("retry-after") {
            retry_after = value.parse().ok();
        } else if name.eq_ignore_ascii_case("x-request-id") {
            request_id = Some(value.to_string());
        }
    }
    let length = length.ok_or_else(|| LoadError::Protocol("missing Content-Length".into()))?;
    let body_start = head_end + 4;
    while buf.len() < body_start + length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| LoadError::Io(format!("read body: {e}")))?;
        if n == 0 {
            return Err(LoadError::Protocol("connection closed mid-body".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(buf[body_start..body_start + length].to_vec())
        .map_err(|_| LoadError::Protocol("non-UTF-8 response body".into()))?;
    Ok(WireResponse {
        status,
        body,
        close,
        retry_after,
        request_id,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> MixSpec {
        MixSpec::from_json(
            r#"{"name": "t", "seed": 42, "templates": [
                {"target": "/healthz", "weight": 2, "verify": false},
                {"target": "/v1/systems", "weight": 1},
                {"target": "/v1/footprint/polaris?seed=7", "weight": 1}
            ]}"#,
        )
        .expect("test mix parses")
    }

    #[test]
    fn plan_is_deterministic_and_weighted() {
        let m = mix();
        let a = build_plan(&m, 400);
        let b = build_plan(&m, 400);
        assert_eq!(a, b, "same seed, same plan");
        assert!(a.iter().all(|&i| i < 3));
        // Weight 2 of 4 ⇒ roughly half the draws hit template 0.
        let zeros = a.iter().filter(|&&i| i == 0).count();
        assert!(
            (120..=280).contains(&zeros),
            "got {zeros}/400 for weight 2/4"
        );
    }

    #[test]
    fn keep_alive_run_replays_without_mismatches() {
        let report = run(
            &mix(),
            &RunConfig {
                requests: 60,
                connections: 3,
                workers: 2,
                ..RunConfig::default()
            },
        )
        .expect("run succeeds");
        assert_eq!(
            (report.mismatches, report.errors),
            (0, 0),
            "{:?}",
            report.mismatch_samples
        );
        assert_eq!(report.requests, 60);
        assert_eq!(report.discipline, "keep-alive");
        let total: u64 = report.endpoints.iter().map(|e| e.requests).sum();
        assert_eq!(total, 60, "every request lands in an endpoint family");
        assert!(report.requests_per_sec > 0.0);
    }

    #[test]
    fn one_shot_run_matches_the_same_expectations() {
        let report = run(
            &mix(),
            &RunConfig {
                requests: 30,
                connections: 2,
                keep_alive: false,
                workers: 1,
                ..RunConfig::default()
            },
        )
        .expect("run succeeds");
        assert_eq!(
            (report.mismatches, report.errors),
            (0, 0),
            "{:?}",
            report.mismatch_samples
        );
        assert_eq!(report.discipline, "one-shot");
    }

    #[test]
    fn a_tampered_expectation_is_counted_as_mismatch() {
        // Point a verified template at a nondeterministic body: the
        // stats counters move between the expectation snapshot and the
        // replay, so the comparison must fail — proving the comparator
        // actually compares.
        let m =
            MixSpec::from_json(r#"{"name": "t", "templates": [{"target": "/v1/cache/stats"}]}"#)
                .unwrap();
        let report = run(
            &m,
            &RunConfig {
                requests: 4,
                connections: 1,
                workers: 1,
                ..RunConfig::default()
            },
        )
        .expect("run completes");
        assert!(
            report.mismatches > 0,
            "stats bodies drift and must be caught"
        );
        assert!(!report.mismatch_samples.is_empty());
    }

    #[test]
    fn unroutable_targets_replay_their_404s() {
        let m = MixSpec::from_json(r#"{"name": "t", "templates": [{"target": "/nope"}]}"#).unwrap();
        let report = run(
            &m,
            &RunConfig {
                requests: 6,
                connections: 2,
                workers: 1,
                ..RunConfig::default()
            },
        )
        .expect("run completes");
        // The expected response is the handler's own 404 — replaying it
        // byte-identically is still a pass.
        assert_eq!((report.mismatches, report.errors), (0, 0));
        assert_eq!(report.endpoints.len(), 1);
        assert_eq!(report.endpoints[0].endpoint, "other");
    }
}
