//! Request-mix specs: the recorded traffic shape a load run replays.
//!
//! A mix file is a small JSON document of weighted endpoint templates:
//!
//! ```json
//! {
//!   "name": "smoke",
//!   "seed": 2023,
//!   "templates": [
//!     {"target": "/healthz", "weight": 1, "verify": false},
//!     {"target": "/v1/footprint/polaris?seed=7", "weight": 4},
//!     {"target": "/v1/scenarios/run", "method": "POST",
//!      "body": {"name": "noop", "base": "polaris"}, "weight": 2}
//!   ]
//! }
//! ```
//!
//! Parsing is strict in the same spirit as the scenario engine
//! (`docs/SCENARIOS.md`): unknown keys, zero weights, or non-`/` targets
//! are errors, so a typo in a recorded mix fails loudly instead of
//! silently replaying the wrong traffic. A `body` given as a JSON
//! object/array is serialized compactly once at parse time, so the
//! replayed bytes are fixed from then on.

use crate::LoadError;
use serde::Value;

/// One weighted endpoint template in a mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Relative draw weight (≥ 1).
    pub weight: u64,
    /// HTTP method (`GET` or `POST`).
    pub method: String,
    /// Request target: path plus optional `?query`, e.g.
    /// `/v1/footprint/polaris?seed=7`.
    pub target: String,
    /// Request body bytes (empty for body-less requests).
    pub body: String,
    /// Whether replayed responses are byte-compared against the
    /// precomputed expected response. Defaults to true; set `"verify":
    /// false` only for endpoints whose bodies are legitimately
    /// non-deterministic (`/healthz` uptime/request counts,
    /// `/v1/cache/stats` and `/v1/metrics` counters).
    pub verify: bool,
}

/// A parsed request mix: named, seeded, weighted templates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixSpec {
    /// Mix name (reported in tables and `BENCH_serve.json`).
    pub name: String,
    /// Seed for the request plan's RNG (default 2023, the model year).
    pub seed: u64,
    /// The weighted templates (at least one).
    pub templates: Vec<Template>,
}

impl MixSpec {
    /// Parses and validates a mix spec from JSON text.
    pub fn from_json(text: &str) -> Result<MixSpec, LoadError> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| LoadError::Mix(format!("invalid JSON: {e}")))?;
        let obj = value
            .as_object()
            .ok_or_else(|| LoadError::Mix("top level must be an object".into()))?;

        let mut name = None;
        let mut seed = 2023u64;
        let mut templates = Vec::new();
        for (key, v) in obj {
            match key.as_str() {
                "name" => name = Some(parse_string(v, "name")?),
                "seed" => {
                    seed = v.as_u64().ok_or_else(|| {
                        LoadError::Mix("seed must be a non-negative integer".into())
                    })?
                }
                "templates" => {
                    let items = v
                        .as_array()
                        .ok_or_else(|| LoadError::Mix("templates must be an array".into()))?;
                    for (i, item) in items.iter().enumerate() {
                        templates.push(parse_template(item, i)?);
                    }
                }
                other => {
                    return Err(LoadError::Mix(format!(
                        "unknown key {other:?} (expected name, seed, templates)"
                    )))
                }
            }
        }
        let name = name.ok_or_else(|| LoadError::Mix("missing required key \"name\"".into()))?;
        if templates.is_empty() {
            return Err(LoadError::Mix(
                "templates must list at least one template".into(),
            ));
        }
        Ok(MixSpec {
            name,
            seed,
            templates,
        })
    }

    /// Sum of all template weights (the plan RNG's draw range).
    pub fn total_weight(&self) -> u64 {
        self.templates.iter().map(|t| t.weight).sum()
    }
}

fn parse_template(v: &Value, index: usize) -> Result<Template, LoadError> {
    let ctx = format!("templates[{index}]");
    let obj = v
        .as_object()
        .ok_or_else(|| LoadError::Mix(format!("{ctx} must be an object")))?;

    let mut weight = 1u64;
    let mut method = None;
    let mut target = None;
    let mut body = String::new();
    let mut has_body = false;
    let mut verify = true;
    for (key, v) in obj {
        match key.as_str() {
            "weight" => {
                weight = v
                    .as_u64()
                    .filter(|w| *w >= 1)
                    .ok_or_else(|| LoadError::Mix(format!("{ctx}.weight must be an integer ≥ 1")))?
            }
            "method" => {
                let m = parse_string(v, &format!("{ctx}.method"))?.to_ascii_uppercase();
                if m != "GET" && m != "POST" {
                    return Err(LoadError::Mix(format!(
                        "{ctx}.method must be GET or POST, got {m:?}"
                    )));
                }
                method = Some(m);
            }
            "target" => target = Some(parse_string(v, &format!("{ctx}.target"))?),
            "body" => {
                has_body = true;
                body = match v {
                    // A string body is replayed verbatim; a structured
                    // body is fixed to its compact rendering here.
                    Value::Str(s) => s.clone(),
                    Value::Object(_) | Value::Array(_) => serde_json::to_string(v)
                        .map_err(|e| LoadError::Mix(format!("{ctx}.body: {e}")))?,
                    _ => {
                        return Err(LoadError::Mix(format!(
                            "{ctx}.body must be a string, object, or array"
                        )))
                    }
                };
            }
            "verify" => {
                verify = match v {
                    Value::Bool(b) => *b,
                    _ => return Err(LoadError::Mix(format!("{ctx}.verify must be a boolean"))),
                }
            }
            other => {
                return Err(LoadError::Mix(format!(
                    "{ctx}: unknown key {other:?} (expected weight, method, target, body, verify)"
                )))
            }
        }
    }
    let target = target.ok_or_else(|| LoadError::Mix(format!("{ctx}: missing \"target\"")))?;
    if !target.starts_with('/') {
        return Err(LoadError::Mix(format!(
            "{ctx}.target must start with '/', got {target:?}"
        )));
    }
    // Default the method from the body's presence: a template with a
    // body is a POST unless it says otherwise.
    let method = method.unwrap_or_else(|| {
        if has_body {
            "POST".into()
        } else {
            "GET".into()
        }
    });
    if method == "GET" && has_body {
        return Err(LoadError::Mix(format!(
            "{ctx}: GET templates cannot carry a body"
        )));
    }
    Ok(Template {
        weight,
        method,
        target,
        body,
        verify,
    })
}

fn parse_string(v: &Value, ctx: &str) -> Result<String, LoadError> {
    match v {
        Value::Str(s) if !s.is_empty() => Ok(s.clone()),
        _ => Err(LoadError::Mix(format!("{ctx} must be a non-empty string"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_mix_parses_with_defaults() {
        let mix =
            MixSpec::from_json(r#"{"name": "m", "templates": [{"target": "/healthz"}]}"#).unwrap();
        assert_eq!(mix.name, "m");
        assert_eq!(mix.seed, 2023);
        assert_eq!(mix.templates.len(), 1);
        let t = &mix.templates[0];
        assert_eq!(
            (t.weight, t.method.as_str(), t.target.as_str(), t.verify),
            (1, "GET", "/healthz", true)
        );
        assert!(t.body.is_empty());
        assert_eq!(mix.total_weight(), 1);
    }

    #[test]
    fn structured_body_defaults_to_post_and_renders_compactly() {
        let mix = MixSpec::from_json(
            r#"{"name": "m", "templates": [
                {"target": "/v1/scenarios/run", "body": {"name": "noop", "base": "polaris"}}
            ]}"#,
        )
        .unwrap();
        let t = &mix.templates[0];
        assert_eq!(t.method, "POST");
        assert_eq!(t.body, r#"{"name":"noop","base":"polaris"}"#);
    }

    #[test]
    fn unknown_keys_fail_loudly() {
        for (spec, needle) in [
            (r#"{"name": "m", "templats": []}"#, "unknown key"),
            (
                r#"{"name": "m", "templates": [{"target": "/x", "wieght": 2}]}"#,
                "unknown key",
            ),
        ] {
            let err = MixSpec::from_json(spec).unwrap_err();
            assert!(
                matches!(&err, LoadError::Mix(m) if m.contains(needle)),
                "{err}"
            );
        }
    }

    #[test]
    fn invalid_shapes_are_rejected() {
        for spec in [
            r#"{"templates": [{"target": "/x"}]}"#,             // no name
            r#"{"name": "m", "templates": []}"#,                // empty
            r#"{"name": "m", "templates": [{"target": "x"}]}"#, // no slash
            r#"{"name": "m", "templates": [{"target": "/x", "weight": 0}]}"#,
            r#"{"name": "m", "templates": [{"target": "/x", "method": "PUT"}]}"#,
            r#"{"name": "m", "templates": [{"target": "/x", "method": "GET", "body": "b"}]}"#,
            r#"{"name": "m", "seed": -1, "templates": [{"target": "/x"}]}"#,
        ] {
            assert!(MixSpec::from_json(spec).is_err(), "accepted: {spec}");
        }
    }

    #[test]
    fn weights_sum() {
        let mix = MixSpec::from_json(
            r#"{"name": "m", "seed": 7, "templates": [
                {"target": "/a", "weight": 3}, {"target": "/b", "weight": 5}
            ]}"#,
        )
        .unwrap();
        assert_eq!(mix.total_weight(), 8);
        assert_eq!(mix.seed, 7);
    }
}
