//! `thirstyflops_faults` — deterministic, seeded fault injection.
//!
//! Chaos testing is only CI-gateable when the chaos itself replays: the
//! same plan against the same traffic must fire the same faults, in the
//! same aggregate counts, at any worker count. This crate provides that
//! contract. A [`FaultPlan`] (parsed from JSON text or the
//! `THIRSTYFLOPS_FAULTS` environment variable) names a set of fault
//! *sites* with firing rates; a [`FaultInjector`] decides, per visit to
//! an instrumented site, whether the fault fires.
//!
//! Determinism scheme: every decision is a pure function of
//! `(plan seed, site class, visit ordinal)`. Each site class keeps one
//! atomic visit counter; the decision for visit *k* hashes the seed,
//! the class, and *k* into a ChaCha12 stream ([`rand::rngs::StdRng`])
//! and fires when the resulting uniform draw falls under the configured
//! rate. The *number of faults fired after V visits* is therefore a
//! pure function of V — independent of which thread took which visit —
//! so aggregate fault counters are bit-identical across worker counts
//! whenever total visit counts are (see `docs/ROBUSTNESS.md` for the
//! fixed-point argument loadgen's `--chaos` mode relies on).
//!
//! The three response-write faults (latency, truncate, stall) share one
//! site class and one draw, partitioned by rate, so at most one of them
//! fires per response — the exclusivity is what keeps their per-fault
//! counts independent of scheduling.
//!
//! Zero-overhead contract: when no plan is installed, the global lookup
//! is a single relaxed atomic load and every instrumented site in
//! `serve`/`core` short-circuits on a `None` check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;

/// Fault site: the handler is made to panic mid-dispatch.
pub const SITE_HANDLER_PANIC: usize = 0;
/// Fault site: `delay_ms` of latency injected before the response write
/// (drives the per-request deadline into a 504).
pub const SITE_RESPONSE_LATENCY: usize = 1;
/// Fault site: the response write stops halfway and the connection
/// closes — the client sees a truncated wire image.
pub const SITE_WRITE_TRUNCATE: usize = 2;
/// Fault site: the response write pauses `delay_ms` halfway through,
/// then completes — slow but byte-correct.
pub const SITE_WRITE_STALL: usize = 3;
/// Fault site: an accepted connection is dropped before serving.
pub const SITE_ACCEPT_DROP: usize = 4;
/// Fault site: a simulation-cache lookup is forced to recompute
/// (bypassing the memo layer — byte-identical value, cold cost).
pub const SITE_SIMCACHE_POISON: usize = 5;

/// Site names, index order — the `"site"` strings a plan uses and the
/// `site` label on the injected-fault counters.
pub const SITE_NAMES: [&str; 6] = [
    "handler_panic",
    "response_latency",
    "write_truncate",
    "write_stall",
    "accept_drop",
    "simcache_poison",
];

/// Decision classes: sites that share one visit ordinal (and one draw).
/// The three write faults are mutually exclusive within one draw.
const CLASS_HANDLER: usize = 0;
const CLASS_WRITE: usize = 1;
const CLASS_ACCEPT: usize = 2;
const CLASS_SIMCACHE: usize = 3;
const CLASS_COUNT: usize = 4;

/// Prefix of every payload an injected panic carries; the filtered
/// panic hook ([`silence_injected_panics`]) swallows these so chaos
/// runs do not spray backtraces on stderr while real panics still
/// report normally.
pub const PANIC_MARKER: &str = "thirstyflops-fault: injected handler panic";

/// One fault configured at a site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Site index (see [`SITE_NAMES`]).
    pub site: usize,
    /// Firing probability per site visit, in `[0, 1]`.
    pub rate: f64,
    /// Injected delay for `response_latency` / `write_stall`
    /// (milliseconds; default 100).
    pub delay_ms: u64,
}

/// A parsed, validated fault plan.
///
/// ```json
/// {
///   "name": "smoke-chaos",
///   "seed": 42,
///   "faults": [
///     {"site": "handler_panic", "rate": 0.01},
///     {"site": "response_latency", "rate": 0.01, "delay_ms": 400}
///   ]
/// }
/// ```
///
/// Parsing is strict in the workspace's usual spirit: unknown keys,
/// unknown site names, duplicate sites, or rates outside `[0, 1]` are
/// errors. The three write-class rates must sum to ≤ 1 (they partition
/// one draw).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Plan name (reported in chaos tables).
    pub name: String,
    /// Seed of the decision stream. Same seed + same visit counts ⇒
    /// same fault schedule.
    pub seed: u64,
    /// Firing rate per site, [`SITE_NAMES`] order (0 = site disabled).
    pub rates: [f64; SITE_NAMES.len()],
    /// Injected delay per site, [`SITE_NAMES`] order (only meaningful
    /// for `response_latency` and `write_stall`).
    pub delays: [Duration; SITE_NAMES.len()],
}

impl FaultPlan {
    /// Parses and validates a plan from JSON text.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let value: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let obj = value
            .as_object()
            .ok_or("top level must be an object".to_string())?;
        let mut name = None;
        let mut seed = 2023u64;
        let mut rates = [0.0; SITE_NAMES.len()];
        let mut delays = [Duration::from_millis(100); SITE_NAMES.len()];
        let mut seen = [false; SITE_NAMES.len()];
        for (key, v) in obj {
            match key.as_str() {
                "name" => match v {
                    Value::Str(s) if !s.is_empty() => name = Some(s.clone()),
                    _ => return Err("name must be a non-empty string".into()),
                },
                "seed" => {
                    seed = v
                        .as_u64()
                        .ok_or("seed must be a non-negative integer".to_string())?
                }
                "faults" => {
                    let items = v.as_array().ok_or("faults must be an array".to_string())?;
                    for (i, item) in items.iter().enumerate() {
                        let spec = parse_fault(item, i)?;
                        if seen[spec.site] {
                            return Err(format!(
                                "duplicate site {:?} (each site configures at most once)",
                                SITE_NAMES[spec.site]
                            ));
                        }
                        seen[spec.site] = true;
                        rates[spec.site] = spec.rate;
                        delays[spec.site] = Duration::from_millis(spec.delay_ms);
                    }
                }
                other => {
                    return Err(format!(
                        "unknown key {other:?} (expected name, seed, faults)"
                    ))
                }
            }
        }
        let name = name.ok_or("missing required key \"name\"".to_string())?;
        let write_sum =
            rates[SITE_RESPONSE_LATENCY] + rates[SITE_WRITE_TRUNCATE] + rates[SITE_WRITE_STALL];
        if write_sum > 1.0 {
            return Err(format!(
                "response_latency + write_truncate + write_stall rates sum to {write_sum}, \
                 which exceeds 1 (they partition one draw per response)"
            ));
        }
        Ok(FaultPlan {
            name,
            seed,
            rates,
            delays,
        })
    }

    /// Whether any configured site can fire at all.
    pub fn is_armed(&self) -> bool {
        self.rates.iter().any(|r| *r > 0.0)
    }
}

fn parse_fault(v: &Value, index: usize) -> Result<FaultSpec, String> {
    let ctx = format!("faults[{index}]");
    let obj = v.as_object().ok_or(format!("{ctx} must be an object"))?;
    let mut site = None;
    let mut rate = None;
    let mut delay_ms = 100u64;
    for (key, v) in obj {
        match key.as_str() {
            "site" => {
                let s = match v {
                    Value::Str(s) => s.as_str(),
                    _ => return Err(format!("{ctx}.site must be a string")),
                };
                site = Some(SITE_NAMES.iter().position(|n| *n == s).ok_or(format!(
                    "{ctx}.site: unknown site {s:?} (expected one of {SITE_NAMES:?})"
                ))?);
            }
            "rate" => {
                let r = v
                    .as_f64()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or(format!("{ctx}.rate must be a number in [0, 1]"))?;
                rate = Some(r);
            }
            "delay_ms" => {
                delay_ms = v
                    .as_u64()
                    .ok_or(format!("{ctx}.delay_ms must be a non-negative integer"))?
            }
            other => {
                return Err(format!(
                    "{ctx}: unknown key {other:?} (expected site, rate, delay_ms)"
                ))
            }
        }
    }
    Ok(FaultSpec {
        site: site.ok_or(format!("{ctx}: missing \"site\""))?,
        rate: rate.ok_or(format!("{ctx}: missing \"rate\""))?,
        delay_ms,
    })
}

/// What a write-class decision injects into one response write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Sleep this long before writing (then the deadline check runs).
    Latency(Duration),
    /// Write only the first half of the wire bytes, then close.
    Truncate,
    /// Write half, sleep this long, write the rest.
    Stall(Duration),
}

/// A live injector: the plan plus per-class visit ordinals and
/// per-site injected counters.
///
/// Counters are instance-local (like `serve`'s endpoint table) so tests
/// can run many injectors in one process; [`FaultInjector::mirrored`]
/// additionally mirrors increments into the global observability
/// registry as `thirstyflops_faults_injected_total{site=...}` — the
/// CLI's globally-installed injector uses that so chaos runs show up in
/// `/v1/metrics`.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    ordinals: [AtomicU64; CLASS_COUNT],
    injected: [AtomicU64; SITE_NAMES.len()],
    mirror: Option<[thirstyflops_obs::registry::Counter; SITE_NAMES.len()]>,
}

impl FaultInjector {
    /// Builds an injector with instance-local counters only.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            ordinals: Default::default(),
            injected: Default::default(),
            mirror: None,
        }
    }

    /// Builds an injector that also mirrors injected-fault counts into
    /// the global registry (`thirstyflops_faults_injected_total`).
    pub fn mirrored(plan: FaultPlan) -> FaultInjector {
        let mirror = SITE_NAMES.map(|site| {
            thirstyflops_obs::registry::counter_labeled(
                "thirstyflops_faults_injected_total",
                &[("site", site)],
                "faults fired per injection site (chaos plans only)",
            )
        });
        FaultInjector {
            mirror: Some(mirror),
            ..FaultInjector::new(plan)
        }
    }

    /// The plan this injector replays.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The deterministic uniform draw for visit `ordinal` of `class`.
    fn draw(&self, class: usize) -> f64 {
        let ordinal = self.ordinals[class].fetch_add(1, Ordering::Relaxed);
        // Golden-ratio mixing keeps nearby (class, ordinal) pairs on
        // well-separated ChaCha12 streams.
        let key = self
            .plan
            .seed
            .wrapping_add((class as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(ordinal.wrapping_mul(0xD1B5_4A32_D192_ED03));
        StdRng::seed_from_u64(key).random::<f64>()
    }

    fn fired(&self, site: usize) {
        self.injected[site].fetch_add(1, Ordering::Relaxed);
        if let Some(mirror) = &self.mirror {
            mirror[site].inc();
        }
        // Annotate the active causal trace (if any) so "which request
        // did that injected fault land on?" is answerable from
        // `/v1/trace`, `--trace-out`, and the structured access log.
        thirstyflops_obs::trace::mark(SITE_NAMES[site]);
    }

    fn decide_single(&self, class: usize, site: usize) -> bool {
        if self.plan.rates[site] <= 0.0 {
            return false;
        }
        let fire = self.draw(class) < self.plan.rates[site];
        if fire {
            self.fired(site);
        }
        fire
    }

    /// One handler visit: does the injected panic fire?
    pub fn decide_handler_panic(&self) -> bool {
        self.decide_single(CLASS_HANDLER, SITE_HANDLER_PANIC)
    }

    /// One accept visit: is the freshly-accepted connection dropped?
    pub fn decide_accept_drop(&self) -> bool {
        self.decide_single(CLASS_ACCEPT, SITE_ACCEPT_DROP)
    }

    /// One simulation-cache lookup: is the memo layer bypassed?
    pub fn decide_simcache_poison(&self) -> bool {
        self.decide_single(CLASS_SIMCACHE, SITE_SIMCACHE_POISON)
    }

    /// One response write: which write fault (if any) fires. The three
    /// write faults partition a single draw, so they are mutually
    /// exclusive per response.
    pub fn decide_write(&self) -> Option<WriteFault> {
        let rates = &self.plan.rates;
        if rates[SITE_RESPONSE_LATENCY] <= 0.0
            && rates[SITE_WRITE_TRUNCATE] <= 0.0
            && rates[SITE_WRITE_STALL] <= 0.0
        {
            return None;
        }
        let u = self.draw(CLASS_WRITE);
        let mut lo = 0.0;
        for site in [SITE_RESPONSE_LATENCY, SITE_WRITE_TRUNCATE, SITE_WRITE_STALL] {
            let hi = lo + rates[site];
            if u >= lo && u < hi {
                self.fired(site);
                return Some(match site {
                    SITE_RESPONSE_LATENCY => WriteFault::Latency(self.plan.delays[site]),
                    SITE_WRITE_TRUNCATE => WriteFault::Truncate,
                    _ => WriteFault::Stall(self.plan.delays[site]),
                });
            }
            lo = hi;
        }
        None
    }

    /// Injected-fault counts so far, [`SITE_NAMES`] order.
    pub fn injected_snapshot(&self) -> [(&'static str, u64); SITE_NAMES.len()] {
        let mut out = [("", 0u64); SITE_NAMES.len()];
        for (i, name) in SITE_NAMES.iter().enumerate() {
            out[i] = (name, self.injected[i].load(Ordering::Relaxed));
        }
        out
    }
}

/// The fast-path flag: `true` only while a plan is installed globally.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static Mutex<Option<Arc<FaultInjector>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<FaultInjector>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs an injector process-wide: instrumented sites that consult
/// the global slot (the simulation cache; servers bound afterwards)
/// replay this plan. Also installs the filtered panic hook when the
/// plan can fire `handler_panic`.
pub fn install(injector: Arc<FaultInjector>) {
    if injector.plan.rates[SITE_HANDLER_PANIC] > 0.0 {
        silence_injected_panics();
    }
    *slot().lock().expect("fault slot lock") = Some(injector);
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Removes the globally-installed injector (sites revert to the
/// relaxed-load fast path).
pub fn clear() {
    ACTIVE.store(false, Ordering::SeqCst);
    *slot().lock().expect("fault slot lock") = None;
}

/// The globally-installed injector, if any. One relaxed atomic load
/// when no plan is installed — the zero-fault overhead contract.
pub fn global() -> Option<Arc<FaultInjector>> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    slot().lock().expect("fault slot lock").clone()
}

/// Force-registers the `thirstyflops_faults_injected_total` family
/// (every site, zero-valued) in the global observability registry.
/// Idempotent. `serve`'s `/v1/metrics` handler calls this whenever a
/// fault plan is installed, so a fresh chaos server exposes the family
/// before the first injection instead of it being silently absent.
pub fn register_injected_family() {
    for site in SITE_NAMES {
        let _ = thirstyflops_obs::registry::counter_labeled(
            "thirstyflops_faults_injected_total",
            &[("site", site)],
            "faults fired per injection site (chaos plans only)",
        );
    }
}

/// One global simulation-cache poison decision; `false` (one relaxed
/// load) when no plan is installed. `core::simcache` calls this on
/// every memoized-layer lookup.
pub fn global_simcache_poisoned() -> bool {
    match global() {
        Some(injector) => injector.decide_simcache_poison(),
        None => false,
    }
}

/// Installs a process panic hook (once) that swallows payloads carrying
/// [`PANIC_MARKER`]'s prefix and delegates everything else to the
/// previous hook — injected panics stay quiet, real panics still print.
pub fn silence_injected_panics() {
    static HOOKED: std::sync::Once = std::sync::Once::new();
    HOOKED.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str));
            if payload.is_some_and(|m| m.starts_with("thirstyflops-fault:")) {
                return;
            }
            previous(info);
        }));
    });
}

/// Reads `THIRSTYFLOPS_FAULTS` (inline JSON when it starts with `{`,
/// otherwise a plan-file path), parses, and installs globally. Returns
/// the installed injector, `Ok(None)` when the variable is unset.
pub fn install_from_env() -> Result<Option<Arc<FaultInjector>>, String> {
    let raw = match std::env::var("THIRSTYFLOPS_FAULTS") {
        Ok(v) if !v.trim().is_empty() => v,
        _ => return Ok(None),
    };
    let text = if raw.trim_start().starts_with('{') {
        raw
    } else {
        std::fs::read_to_string(raw.trim())
            .map_err(|e| format!("THIRSTYFLOPS_FAULTS: cannot read {raw:?}: {e}"))?
    };
    let plan =
        FaultPlan::from_json(&text).map_err(|e| format!("THIRSTYFLOPS_FAULTS: bad plan: {e}"))?;
    let injector = Arc::new(FaultInjector::mirrored(plan));
    install(Arc::clone(&injector));
    Ok(Some(injector))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(text: &str) -> FaultPlan {
        FaultPlan::from_json(text).expect("plan parses")
    }

    const FULL: &str = r#"{
        "name": "t", "seed": 7, "faults": [
            {"site": "handler_panic", "rate": 0.25},
            {"site": "response_latency", "rate": 0.2, "delay_ms": 250},
            {"site": "write_truncate", "rate": 0.2},
            {"site": "write_stall", "rate": 0.1, "delay_ms": 5},
            {"site": "accept_drop", "rate": 0.5},
            {"site": "simcache_poison", "rate": 0.5}
        ]}"#;

    #[test]
    fn plan_parses_rates_and_delays() {
        let p = plan(FULL);
        assert_eq!(p.name, "t");
        assert_eq!(p.seed, 7);
        assert_eq!(p.rates[SITE_HANDLER_PANIC], 0.25);
        assert_eq!(p.delays[SITE_RESPONSE_LATENCY], Duration::from_millis(250));
        assert_eq!(p.delays[SITE_WRITE_STALL], Duration::from_millis(5));
        assert!(p.is_armed());
        assert!(!plan(r#"{"name": "off"}"#).is_armed());
    }

    #[test]
    fn bad_plans_fail_loudly() {
        for (text, needle) in [
            (r#"{"faults": []}"#, "missing required key \"name\""),
            (r#"{"name": "x", "fault": []}"#, "unknown key"),
            (
                r#"{"name": "x", "faults": [{"site": "nope", "rate": 0.1}]}"#,
                "unknown site",
            ),
            (
                r#"{"name": "x", "faults": [{"site": "accept_drop", "rate": 1.5}]}"#,
                "in [0, 1]",
            ),
            (
                r#"{"name": "x", "faults": [{"site": "accept_drop"}]}"#,
                "missing \"rate\"",
            ),
            (
                r#"{"name": "x", "faults": [
                    {"site": "accept_drop", "rate": 0.1},
                    {"site": "accept_drop", "rate": 0.2}]}"#,
                "duplicate site",
            ),
            (
                r#"{"name": "x", "faults": [
                    {"site": "response_latency", "rate": 0.6},
                    {"site": "write_truncate", "rate": 0.6}]}"#,
                "exceeds 1",
            ),
        ] {
            let err = FaultPlan::from_json(text).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn decisions_replay_bit_identically() {
        let a = FaultInjector::new(plan(FULL));
        let b = FaultInjector::new(plan(FULL));
        for _ in 0..200 {
            assert_eq!(a.decide_handler_panic(), b.decide_handler_panic());
            assert_eq!(a.decide_write(), b.decide_write());
            assert_eq!(a.decide_accept_drop(), b.decide_accept_drop());
            assert_eq!(a.decide_simcache_poison(), b.decide_simcache_poison());
        }
        assert_eq!(a.injected_snapshot(), b.injected_snapshot());
        // The schedule is non-trivial: every configured site fired at
        // least once over 200 visits at these rates.
        for (site, count) in a.injected_snapshot() {
            assert!(count > 0, "{site} never fired in 200 visits");
        }
    }

    #[test]
    fn fault_counts_depend_only_on_visit_counts() {
        // Interleave visits across 4 threads; the aggregate injected
        // counts must match a serial replay with the same totals.
        let serial = FaultInjector::new(plan(FULL));
        for _ in 0..400 {
            serial.decide_handler_panic();
            serial.decide_write();
        }
        let threaded = Arc::new(FaultInjector::new(plan(FULL)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let inj = Arc::clone(&threaded);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        inj.decide_handler_panic();
                        inj.decide_write();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(serial.injected_snapshot(), threaded.injected_snapshot());
    }

    #[test]
    fn write_faults_are_mutually_exclusive_and_typed() {
        let inj = FaultInjector::new(plan(FULL));
        let mut saw = [false; 3];
        for _ in 0..300 {
            match inj.decide_write() {
                Some(WriteFault::Latency(d)) => {
                    assert_eq!(d, Duration::from_millis(250));
                    saw[0] = true;
                }
                Some(WriteFault::Truncate) => saw[1] = true,
                Some(WriteFault::Stall(d)) => {
                    assert_eq!(d, Duration::from_millis(5));
                    saw[2] = true;
                }
                None => {}
            }
        }
        assert_eq!(saw, [true; 3], "all three write faults occur");
        let snap = inj.injected_snapshot();
        let total: u64 = [SITE_RESPONSE_LATENCY, SITE_WRITE_TRUNCATE, SITE_WRITE_STALL]
            .iter()
            .map(|s| snap[*s].1)
            .sum();
        assert!(total <= 300, "at most one write fault per visit");
    }

    #[test]
    fn disabled_sites_never_fire_and_skip_the_draw() {
        let inj = FaultInjector::new(plan(r#"{"name": "quiet"}"#));
        for _ in 0..50 {
            assert!(!inj.decide_handler_panic());
            assert_eq!(inj.decide_write(), None);
            assert!(!inj.decide_accept_drop());
            assert!(!inj.decide_simcache_poison());
        }
        assert!(inj.injected_snapshot().iter().all(|(_, n)| *n == 0));
    }

    #[test]
    fn global_slot_installs_and_clears() {
        // Serialized against other global-slot tests by running in one
        // test; the fast path must read None before and after.
        assert!(global().is_none());
        assert!(!global_simcache_poisoned());
        let inj = Arc::new(FaultInjector::new(plan(
            r#"{"name": "g", "faults": [{"site": "simcache_poison", "rate": 1.0}]}"#,
        )));
        install(Arc::clone(&inj));
        assert!(global().is_some());
        assert!(global_simcache_poisoned(), "rate 1.0 always fires");
        clear();
        assert!(global().is_none());
        assert_eq!(inj.injected_snapshot()[SITE_SIMCACHE_POISON].1, 1);
    }

    #[test]
    fn injected_panics_are_marked() {
        silence_injected_panics();
        let err = std::panic::catch_unwind(|| panic!("{PANIC_MARKER}")).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.starts_with("thirstyflops-fault:"));
    }
}
