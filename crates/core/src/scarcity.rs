//! Water-scarcity adjustment: Eq. 9 and the Fig. 9 direct/indirect split.
//!
//! `WI_WSI = WI · WSI` converts volumetric intensity into a
//! scarcity-weighted ("effective") intensity. An HPC center actually has
//! *two* scarcity contexts: the datacenter's own watershed (direct WSI)
//! and the watersheds of its supplying power plants (indirect WSI,
//! aggregated over the fleet). The split form applies each to its own
//! component:
//!
//! `WI_adjusted = WUE·WSI_direct + PUE·EWF·WSI_indirect`

use thirstyflops_grid::PlantFleet;
use thirstyflops_units::{LitersPerKilowattHour, WaterScarcityIndex};

use crate::intensity::WaterIntensity;

/// Scarcity indices applied to a water intensity.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScarcityAdjustment {
    /// WSI at the datacenter site.
    pub direct_wsi: WaterScarcityIndex,
    /// Aggregated WSI over the supplying plants (Fig. 9).
    pub indirect_wsi: WaterScarcityIndex,
}

impl ScarcityAdjustment {
    /// Uses one WSI for both components — the paper's default Eq. 9 form.
    pub fn uniform(wsi: WaterScarcityIndex) -> Self {
        Self {
            direct_wsi: wsi,
            indirect_wsi: wsi,
        }
    }

    /// Derives the indirect WSI from a plant fleet.
    pub fn from_fleet(direct_wsi: WaterScarcityIndex, fleet: &PlantFleet) -> Self {
        Self {
            direct_wsi,
            indirect_wsi: fleet.indirect_wsi(),
        }
    }

    /// The adjusted ("effective") water intensity.
    pub fn adjust(&self, wi: WaterIntensity) -> LitersPerKilowattHour {
        wi.direct * self.direct_wsi + wi.indirect * self.indirect_wsi
    }

    /// Adjusted intensity under the uniform Eq. 9 form (for comparison
    /// against the split form).
    pub fn adjust_uniform(wi: WaterIntensity, wsi: WaterScarcityIndex) -> LitersPerKilowattHour {
        wi.total() * wsi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thirstyflops_grid::{EnergySource, PowerPlant};
    use thirstyflops_units::Pue;

    fn wi() -> WaterIntensity {
        WaterIntensity::new(
            LitersPerKilowattHour::new(3.0),
            Pue::new(1.5).unwrap(),
            LitersPerKilowattHour::new(2.0),
        )
    }

    #[test]
    fn uniform_matches_eq9() {
        let wsi = WaterScarcityIndex::new(0.5).unwrap();
        let adj = ScarcityAdjustment::uniform(wsi).adjust(wi());
        assert!((adj.value() - 3.0).abs() < 1e-12); // (3+3)*0.5
        assert_eq!(
            ScarcityAdjustment::adjust_uniform(wi(), wsi).value(),
            adj.value()
        );
    }

    #[test]
    fn split_wsi_weights_components_differently() {
        let adj = ScarcityAdjustment {
            direct_wsi: WaterScarcityIndex::new(0.1).unwrap(),
            indirect_wsi: WaterScarcityIndex::new(0.9).unwrap(),
        };
        let v = adj.adjust(wi()).value();
        // 3·0.1 + 3·0.9 = 3.0, vs uniform with either index: 0.6 or 5.4.
        assert!((v - 3.0).abs() < 1e-12);
        assert!(v > ScarcityAdjustment::adjust_uniform(wi(), adj.direct_wsi).value());
        assert!(v < ScarcityAdjustment::adjust_uniform(wi(), adj.indirect_wsi).value());
    }

    #[test]
    fn fleet_derived_indirect_wsi() {
        let fleet = PlantFleet::new(vec![
            PowerPlant::new("A", EnergySource::Nuclear, 0.5, 0.8).unwrap(),
            PowerPlant::new("B", EnergySource::Hydro, 0.5, 0.2).unwrap(),
        ])
        .unwrap();
        let adj = ScarcityAdjustment::from_fleet(WaterScarcityIndex::new(0.4).unwrap(), &fleet);
        assert!((adj.indirect_wsi.value() - 0.5).abs() < 1e-12);
        assert!((adj.direct_wsi.value() - 0.4).abs() < 1e-12);
        let v = adj.adjust(wi()).value();
        assert!((v - (3.0 * 0.4 + 3.0 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn zero_wsi_zeroes_the_footprint() {
        let adj = ScarcityAdjustment::uniform(WaterScarcityIndex::new(0.0).unwrap());
        assert_eq!(adj.adjust(wi()).value(), 0.0);
    }
}
