//! The ThirstyFLOPS core: the paper's water-footprint models.
//!
//! * [`embodied`] — Eq. 2–5: packaging + manufacturing water for
//!   processors (per-die-area) and memory/storage (per-GB);
//! * [`operational`] — Eq. 6–7: direct (cooling) and indirect
//!   (energy-generation) water from energy × WUE / PUE·EWF;
//! * [`intensity`] — Eq. 8: `WI = WUE + PUE·EWF` and its hourly series;
//! * [`scarcity`] — Eq. 9 + Fig. 9: WSI-adjusted intensity with separate
//!   direct and indirect scarcity indices;
//! * [`withdrawal`] — Table 3 (§6): discharge/reuse/potable modeling of
//!   water *withdrawal* on top of consumption;
//! * [`tradeoff`] — the Fig. 4 embodied-vs-operational ratio analysis;
//! * [`simulate`] — glue: a [`SystemYear`] bundles one simulated year of
//!   utilization, energy, WUE, EWF and carbon intensity for a cataloged
//!   system, and [`FootprintModel`] turns it into an [`AnnualReport`];
//! * [`simcache`] — the process-wide memoized simulation substrate:
//!   sharded single-flight caches for grid years, climate → WUE series,
//!   and whole `Arc<SystemYear>`s (see `docs/PERFORMANCE.md`);
//! * [`batch`] — the batched K-lane evaluation kernel: score K system
//!   configurations per pass over the hour axis, bit-identical per lane
//!   to the scalar path, plus the streaming top-N aggregator sweeps use
//!   to rank 10⁵⁺ cells without materializing every row;
//! * [`params`] — the Table 2 parameter checklist as data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod batch;
pub mod embodied;
pub mod intensity;
pub mod lifecycle;
pub mod operational;
pub mod params;
pub mod scarcity;
pub mod sensitivity;
pub mod simcache;
pub mod simulate;
pub mod tradeoff;
pub mod uncertainty;
pub mod withdrawal;

pub use embodied::EmbodiedBreakdown;
pub use intensity::WaterIntensity;
pub use lifecycle::{LifecycleModel, LifecycleReport};
pub use operational::OperationalBreakdown;
pub use scarcity::ScarcityAdjustment;
pub use simulate::{AnnualReport, FootprintModel, SystemYear};
pub use tradeoff::RatioGrid;
pub use uncertainty::Interval;
pub use withdrawal::{WithdrawalParams, WithdrawalReport};
