//! Water withdrawal modeling: §6 / Table 3.
//!
//! Consumption (the paper's default metric) is withdrawal minus
//! discharge. Going the other way, withdrawal decomposes as
//!
//! `W_withdrawal = W_consumption + W_discharge − W_reuse`
//!
//! with the discharge normalized for environmental context — outfall
//! location factor `L_k` and pollutant hazard factors `P_j` — and reuse
//! as a fraction `ρ` of discharge. Withdrawn water further splits into
//! potable/non-potable streams with their own scarcity factors
//! `S_potable` / `S_non-potable`.

use thirstyflops_units::{Fraction, Liters};

/// Inputs of the Table 3 withdrawal model.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WithdrawalParams {
    /// Reported discharge volume (`W_actual_discharge`).
    pub actual_discharge: Liters,
    /// Outfall location factor `L_k` (wetlands purify < 1, rivers = 1,
    /// sensitive basins > 1).
    pub outfall_factor: f64,
    /// Pollutant hazard factors `P_j` (BOD, COD, heavy metals, …),
    /// multiplied together.
    pub pollutant_factors: Vec<f64>,
    /// Water reuse rate `ρ` applied to discharge.
    pub reuse_rate: Fraction,
    /// Potable fraction `β_potable` of withdrawal.
    pub potable_fraction: Fraction,
    /// Scarcity factor of the potable source, `[0, 1]`.
    pub s_potable: f64,
    /// Scarcity factor of the non-potable source, `[0, 1]`.
    pub s_non_potable: f64,
}

impl WithdrawalParams {
    /// Validates factor ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.actual_discharge.value() < 0.0 {
            return Err("discharge must be non-negative".into());
        }
        if self.outfall_factor <= 0.0 {
            return Err(format!(
                "outfall factor must be positive: {}",
                self.outfall_factor
            ));
        }
        if self.pollutant_factors.iter().any(|&p| p <= 0.0) {
            return Err("pollutant factors must be positive".into());
        }
        for (name, s) in [
            ("S_potable", self.s_potable),
            ("S_non_potable", self.s_non_potable),
        ] {
            if !(0.0..=1.0).contains(&s) {
                return Err(format!("{name} must be in [0, 1]: {s}"));
            }
        }
        Ok(())
    }

    /// Environmental-context-adjusted discharge:
    /// `W_discharge = W_actual · L_k · Π P_j`.
    pub fn adjusted_discharge(&self) -> Liters {
        let p: f64 = self.pollutant_factors.iter().product();
        self.actual_discharge * (self.outfall_factor * p)
    }
}

/// Outputs of the withdrawal model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WithdrawalReport {
    /// Context-adjusted discharge.
    pub adjusted_discharge: Liters,
    /// Recycled water (`ρ ·` discharge).
    pub reuse: Liters,
    /// Total withdrawal.
    pub withdrawal: Liters,
    /// Potable part of withdrawal.
    pub potable: Liters,
    /// Non-potable part of withdrawal.
    pub non_potable: Liters,
    /// Scarcity-weighted withdrawal (potable/non-potable scaled by their
    /// source scarcity factors).
    pub scarcity_weighted: Liters,
}

/// Evaluates the Table 3 model for a known consumption volume.
///
/// ```
/// use thirstyflops_core::withdrawal::{withdrawal_report, WithdrawalParams};
/// use thirstyflops_units::{Fraction, Liters};
///
/// let params = WithdrawalParams {
///     actual_discharge: Liters::new(1000.0),
///     outfall_factor: 1.0,          // river outfall
///     pollutant_factors: vec![1.1], // mild BOD load
///     reuse_rate: Fraction::new(0.5).unwrap(),
///     potable_fraction: Fraction::new(0.6).unwrap(),
///     s_potable: 0.8,
///     s_non_potable: 0.3,
/// };
/// let r = withdrawal_report(Liters::new(500.0), &params).unwrap();
/// // withdrawal = consumption + adjusted discharge − reuse
/// assert!((r.withdrawal.value() - (500.0 + 1100.0 - 550.0)).abs() < 1e-9);
/// ```
pub fn withdrawal_report(
    consumption: Liters,
    params: &WithdrawalParams,
) -> Result<WithdrawalReport, String> {
    params.validate()?;
    if consumption.value() < 0.0 {
        return Err("consumption must be non-negative".into());
    }
    let adjusted_discharge = params.adjusted_discharge();
    let reuse = adjusted_discharge * params.reuse_rate.value();
    let withdrawal = (consumption + adjusted_discharge - reuse).max(Liters::ZERO);
    let potable = withdrawal * params.potable_fraction.value();
    let non_potable = withdrawal - potable;
    let scarcity_weighted = potable * params.s_potable + non_potable * params.s_non_potable;
    Ok(WithdrawalReport {
        adjusted_discharge,
        reuse,
        withdrawal,
        potable,
        non_potable,
        scarcity_weighted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WithdrawalParams {
        WithdrawalParams {
            actual_discharge: Liters::new(1000.0),
            outfall_factor: 1.0,
            pollutant_factors: vec![1.1, 1.05],
            reuse_rate: Fraction::new(0.2).unwrap(),
            potable_fraction: Fraction::new(0.6).unwrap(),
            s_potable: 0.8,
            s_non_potable: 0.3,
        }
    }

    #[test]
    fn withdrawal_identity() {
        let r = withdrawal_report(Liters::new(500.0), &params()).unwrap();
        let disc = 1000.0 * 1.1 * 1.05;
        assert!((r.adjusted_discharge.value() - disc).abs() < 1e-9);
        assert!((r.reuse.value() - 0.2 * disc).abs() < 1e-9);
        assert!((r.withdrawal.value() - (500.0 + disc - 0.2 * disc)).abs() < 1e-9);
        // Potable split.
        assert!((r.potable.value() - 0.6 * r.withdrawal.value()).abs() < 1e-9);
        assert!((r.potable.value() + r.non_potable.value() - r.withdrawal.value()).abs() < 1e-9);
        // Scarcity weighting.
        let expected = r.potable.value() * 0.8 + r.non_potable.value() * 0.3;
        assert!((r.scarcity_weighted.value() - expected).abs() < 1e-9);
    }

    #[test]
    fn full_reuse_means_withdrawal_equals_consumption() {
        let mut p = params();
        p.reuse_rate = Fraction::ONE;
        let r = withdrawal_report(Liters::new(500.0), &p).unwrap();
        assert!((r.withdrawal.value() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn wetland_outfall_discounts_discharge() {
        let mut wetland = params();
        wetland.outfall_factor = 0.7; // purification credit
        let base = withdrawal_report(Liters::new(500.0), &params()).unwrap();
        let better = withdrawal_report(Liters::new(500.0), &wetland).unwrap();
        assert!(better.withdrawal.value() < base.withdrawal.value());
    }

    #[test]
    fn hazardous_pollutants_scale_up() {
        let mut dirty = params();
        dirty.pollutant_factors = vec![1.5, 1.4, 1.2];
        let base = withdrawal_report(Liters::new(500.0), &params()).unwrap();
        let worse = withdrawal_report(Liters::new(500.0), &dirty).unwrap();
        assert!(worse.adjusted_discharge.value() > base.adjusted_discharge.value());
    }

    #[test]
    fn validation_failures() {
        let mut p = params();
        p.outfall_factor = 0.0;
        assert!(withdrawal_report(Liters::new(1.0), &p).is_err());
        let mut p = params();
        p.pollutant_factors = vec![1.0, -0.5];
        assert!(withdrawal_report(Liters::new(1.0), &p).is_err());
        let mut p = params();
        p.s_potable = 1.5;
        assert!(withdrawal_report(Liters::new(1.0), &p).is_err());
        assert!(withdrawal_report(Liters::new(-1.0), &params()).is_err());
    }

    #[test]
    fn withdrawal_never_negative() {
        // Degenerate: zero consumption, total reuse.
        let mut p = params();
        p.reuse_rate = Fraction::ONE;
        let r = withdrawal_report(Liters::ZERO, &p).unwrap();
        assert!(r.withdrawal.value() >= 0.0);
    }
}
