//! Per-job water/carbon attribution.
//!
//! Facility-level footprints (Eq. 6–8) answer "how much does the machine
//! drink"; users and tenant accounting need "how much does *my job*
//! drink". A job is attributed the water and carbon of its energy at the
//! intensities prevailing **while it ran** — the time-resolved accounting
//! that makes the Fig. 13 start-time effects visible on invoices, and the
//! water analogue of the Fair-CO2-style attribution the related work
//! explores.

use thirstyflops_timeseries::HOURS_PER_YEAR;
use thirstyflops_units::{GramsCo2, KilowattHours, Liters};

use crate::simulate::SystemYear;

/// A job's resource claim for attribution.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobClaim {
    /// Start hour-of-year.
    pub start_hour: usize,
    /// Duration in whole hours (≥ 1).
    pub duration_hours: usize,
    /// Mean IT power drawn by the job, kW.
    pub mean_power_kw: f64,
}

impl JobClaim {
    /// IT energy consumed.
    pub fn energy(&self) -> KilowattHours {
        KilowattHours::new(self.mean_power_kw * self.duration_hours as f64)
    }
}

/// Attributed footprint of one job.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobFootprint {
    /// IT energy.
    pub energy: KilowattHours,
    /// Direct (cooling) water during the job's hours.
    pub direct_water: Liters,
    /// Indirect (generation) water during the job's hours.
    pub indirect_water: Liters,
    /// Operational carbon during the job's hours.
    pub carbon: GramsCo2,
}

impl JobFootprint {
    /// Total attributed water.
    pub fn total_water(&self) -> Liters {
        self.direct_water + self.indirect_water
    }
}

/// Attributes a job against a simulated system-year's hourly intensities.
/// The job's hours wrap around the year boundary.
pub fn attribute_job(year: &SystemYear, claim: &JobClaim) -> Result<JobFootprint, String> {
    if claim.duration_hours == 0 {
        return Err("job duration must be positive".into());
    }
    if claim.start_hour >= HOURS_PER_YEAR {
        return Err(format!("start hour {} outside the year", claim.start_hour));
    }
    if !(claim.mean_power_kw.is_finite() && claim.mean_power_kw >= 0.0) {
        return Err(format!("bad mean power {}", claim.mean_power_kw));
    }
    let pue = year.spec.pue.value();
    let mut direct = 0.0;
    let mut indirect = 0.0;
    let mut carbon = 0.0;
    for i in 0..claim.duration_hours {
        let h = (claim.start_hour + i) % HOURS_PER_YEAR;
        let e = claim.mean_power_kw; // kWh in this hour
        direct += e * year.wue.get(h);
        indirect += e * pue * year.ewf.get(h);
        carbon += e * pue * year.carbon.get(h);
    }
    Ok(JobFootprint {
        energy: claim.energy(),
        direct_water: Liters::new(direct),
        indirect_water: Liters::new(indirect),
        carbon: GramsCo2::new(carbon),
    })
}

/// Attributes a batch of jobs; the sum of attributions equals the
/// footprint of their combined load (attribution is conservative — no
/// water is created or lost by splitting it across jobs).
pub fn attribute_jobs(year: &SystemYear, claims: &[JobClaim]) -> Result<Vec<JobFootprint>, String> {
    claims.iter().map(|c| attribute_job(year, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use thirstyflops_catalog::SystemId;

    fn year() -> std::sync::Arc<SystemYear> {
        SystemYear::simulate(SystemId::Polaris, 8)
    }

    #[test]
    fn attribution_matches_hand_computation() {
        let y = year();
        let claim = JobClaim {
            start_hour: 4000,
            duration_hours: 3,
            mean_power_kw: 100.0,
        };
        let f = attribute_job(&y, &claim).unwrap();
        let mut expect_direct = 0.0;
        for i in 0..3 {
            expect_direct += 100.0 * y.wue.get(4000 + i);
        }
        assert!((f.direct_water.value() - expect_direct).abs() < 1e-9);
        assert_eq!(f.energy, KilowattHours::new(300.0));
        assert!(f.indirect_water.value() > 0.0);
        assert!(f.carbon.value() > 0.0);
    }

    #[test]
    fn attribution_is_conservative() {
        // Two half-power jobs over the same hours attribute exactly the
        // same water as one full-power job.
        let y = year();
        let whole = JobClaim {
            start_hour: 100,
            duration_hours: 5,
            mean_power_kw: 200.0,
        };
        let half = JobClaim {
            start_hour: 100,
            duration_hours: 5,
            mean_power_kw: 100.0,
        };
        let w = attribute_job(&y, &whole).unwrap();
        let parts = attribute_jobs(&y, &[half, half]).unwrap();
        let parts_water: f64 = parts.iter().map(|p| p.total_water().value()).sum();
        assert!((w.total_water().value() - parts_water).abs() < 1e-9);
        let parts_carbon: f64 = parts.iter().map(|p| p.carbon.value()).sum();
        assert!((w.carbon.value() - parts_carbon).abs() < 1e-9);
    }

    #[test]
    fn same_energy_different_hours_different_water() {
        // The Fig. 13 effect at attribution granularity: a summer-noon job
        // and a winter-night job with identical energy get different bills.
        let y = year();
        let summer_noon = JobClaim {
            start_hour: 190 * 24 + 12,
            duration_hours: 4,
            mean_power_kw: 50.0,
        };
        let winter_night = JobClaim {
            start_hour: 20 * 24 + 2,
            duration_hours: 4,
            mean_power_kw: 50.0,
        };
        let a = attribute_job(&y, &summer_noon).unwrap();
        let b = attribute_job(&y, &winter_night).unwrap();
        assert_eq!(a.energy, b.energy);
        assert!(
            a.direct_water.value() > 2.0 * b.direct_water.value(),
            "summer {} vs winter {}",
            a.direct_water,
            b.direct_water
        );
    }

    #[test]
    fn wrap_around_and_validation() {
        let y = year();
        let wrap = JobClaim {
            start_hour: HOURS_PER_YEAR - 2,
            duration_hours: 5,
            mean_power_kw: 10.0,
        };
        assert!(attribute_job(&y, &wrap).is_ok());
        assert!(attribute_job(
            &y,
            &JobClaim {
                start_hour: 0,
                duration_hours: 0,
                mean_power_kw: 1.0
            }
        )
        .is_err());
        assert!(attribute_job(
            &y,
            &JobClaim {
                start_hour: HOURS_PER_YEAR,
                duration_hours: 1,
                mean_power_kw: 1.0
            }
        )
        .is_err());
        assert!(attribute_job(
            &y,
            &JobClaim {
                start_hour: 0,
                duration_hours: 1,
                mean_power_kw: -5.0
            }
        )
        .is_err());
    }
}
