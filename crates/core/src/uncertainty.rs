//! Uncertainty propagation for footprint estimates.
//!
//! The paper is emphatic that water-footprint modeling is young: "due to
//! the infancy stage of water footprint modeling and lack of
//! standardization … we focus on comparative trade-offs and trends
//! instead of claiming typical %-based improvement". This module makes
//! that honesty mechanical: every factor with a published range (per-source
//! EWF min/median/max, WPC tolerances, yield bands) can be carried as an
//! [`Interval`] and propagated through the models, so results come out as
//! `[lo, mid, hi]` bands instead of false-precision points.
//!
//! Interval arithmetic here is the conservative kind valid for the
//! non-negative quantities these models use (volumes, intensities,
//! energies): sums add endpoints, products multiply the matching extremes.

use thirstyflops_grid::EnergyMix;
use thirstyflops_units::Pue;

/// A `[lo, mid, hi]` uncertainty band. Invariant: `lo ≤ mid ≤ hi`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Central estimate.
    pub mid: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Builds a band, validating the ordering and non-negativity (model
    /// quantities here are volumes/intensities/energies).
    pub fn new(lo: f64, mid: f64, hi: f64) -> Result<Interval, String> {
        if !(lo.is_finite() && mid.is_finite() && hi.is_finite()) {
            return Err("interval endpoints must be finite".into());
        }
        if lo < 0.0 {
            return Err(format!("negative lower bound {lo}"));
        }
        if !(lo <= mid && mid <= hi) {
            return Err(format!("unordered interval [{lo}, {mid}, {hi}]"));
        }
        Ok(Interval { lo, mid, hi })
    }

    /// A degenerate (certain) value.
    pub fn exact(v: f64) -> Interval {
        Interval {
            lo: v,
            mid: v,
            hi: v,
        }
    }

    /// A band from a relative tolerance: `mid · (1 ± tol)`.
    pub fn with_tolerance(mid: f64, tol: f64) -> Result<Interval, String> {
        if !(0.0..1.0).contains(&tol) {
            return Err(format!("tolerance must be in [0,1): {tol}"));
        }
        Interval::new(mid * (1.0 - tol), mid, mid * (1.0 + tol))
    }

    /// Band width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Relative half-width versus the central estimate (0 for exact).
    pub fn relative_uncertainty(&self) -> f64 {
        if self.mid == 0.0 {
            0.0
        } else {
            self.width() / (2.0 * self.mid)
        }
    }

    /// True if `v` lies within the band.
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }

    /// True if two bands overlap — the "can we actually rank these two
    /// systems?" test.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Interval sum.
    pub fn add(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo + other.lo,
            mid: self.mid + other.mid,
            hi: self.hi + other.hi,
        }
    }

    /// Interval product (valid for non-negative operands).
    pub fn mul(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo * other.lo,
            mid: self.mid * other.mid,
            hi: self.hi * other.hi,
        }
    }

    /// Scale by a non-negative constant.
    pub fn scale(&self, k: f64) -> Interval {
        debug_assert!(k >= 0.0, "scaling by a negative constant flips bounds");
        Interval {
            lo: self.lo * k,
            mid: self.mid * k,
            hi: self.hi * k,
        }
    }
}

/// The EWF band of an energy mix: share-weighted per-source
/// `(min, median, max)` — how uncertain the indirect intensity is before
/// any telemetry narrows it.
pub fn mix_ewf_interval(mix: &EnergyMix) -> Interval {
    let mut lo = 0.0;
    let mut mid = 0.0;
    let mut hi = 0.0;
    for (source, share) in mix.iter() {
        let r = source.ewf_range();
        lo += share.value() * r.min;
        mid += share.value() * r.median;
        hi += share.value() * r.max;
    }
    Interval { lo, mid, hi }
}

/// The carbon-intensity band of an energy mix.
pub fn mix_carbon_interval(mix: &EnergyMix) -> Interval {
    let mut lo = 0.0;
    let mut mid = 0.0;
    let mut hi = 0.0;
    for (source, share) in mix.iter() {
        let r = source.carbon_range();
        lo += share.value() * r.min;
        mid += share.value() * r.median;
        hi += share.value() * r.max;
    }
    Interval { lo, mid, hi }
}

/// Operational water band (Eq. 6 + 7 over bands): `E · (WUE + PUE·EWF)`.
pub fn operational_interval(
    energy_kwh: Interval,
    wue: Interval,
    pue: Pue,
    ewf: Interval,
) -> Interval {
    let wi = wue.add(&ewf.scale(pue.value()));
    energy_kwh.mul(&wi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thirstyflops_grid::EnergySource;

    #[test]
    fn construction_and_validation() {
        assert!(Interval::new(1.0, 2.0, 3.0).is_ok());
        assert!(Interval::new(3.0, 2.0, 1.0).is_err());
        assert!(Interval::new(-1.0, 0.0, 1.0).is_err());
        assert!(Interval::new(0.0, f64::NAN, 1.0).is_err());
        let t = Interval::with_tolerance(10.0, 0.2).unwrap();
        assert_eq!(t.lo, 8.0);
        assert_eq!(t.hi, 12.0);
        assert!(Interval::with_tolerance(1.0, 1.5).is_err());
    }

    #[test]
    fn arithmetic() {
        let a = Interval::new(1.0, 2.0, 3.0).unwrap();
        let b = Interval::new(10.0, 20.0, 30.0).unwrap();
        let s = a.add(&b);
        assert_eq!((s.lo, s.mid, s.hi), (11.0, 22.0, 33.0));
        let p = a.mul(&b);
        assert_eq!((p.lo, p.mid, p.hi), (10.0, 40.0, 90.0));
        let k = a.scale(2.0);
        assert_eq!((k.lo, k.mid, k.hi), (2.0, 4.0, 6.0));
        assert_eq!(a.width(), 2.0);
        assert!((a.relative_uncertainty() - 0.5).abs() < 1e-12);
        assert_eq!(Interval::exact(5.0).relative_uncertainty(), 0.0);
    }

    #[test]
    fn overlap_semantics() {
        let a = Interval::new(1.0, 2.0, 3.0).unwrap();
        let b = Interval::new(2.5, 3.0, 4.0).unwrap();
        let c = Interval::new(5.0, 6.0, 7.0).unwrap();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(a.contains(2.9));
        assert!(!a.contains(3.1));
    }

    #[test]
    fn hydro_heavy_mix_has_huge_ewf_band() {
        // Hydro's (1, 17, 26) range dominates the uncertainty — the paper's
        // observation about reservoir-shape variance made quantitative.
        let hydro =
            EnergyMix::new(&[(EnergySource::Hydro, 0.5), (EnergySource::Gas, 0.5)]).unwrap();
        let nuke =
            EnergyMix::new(&[(EnergySource::Nuclear, 0.5), (EnergySource::Gas, 0.5)]).unwrap();
        let h = mix_ewf_interval(&hydro);
        let n = mix_ewf_interval(&nuke);
        assert!(h.relative_uncertainty() > n.relative_uncertainty());
        assert!(h.width() > 10.0, "hydro band width {}", h.width());
        // Mid equals the point estimate used elsewhere.
        assert!((h.mid - hydro.ewf().value()).abs() < 1e-12);
    }

    #[test]
    fn operational_band_brackets_point_estimate() {
        let e = Interval::with_tolerance(1.0e6, 0.05).unwrap();
        let wue = Interval::new(2.0, 3.0, 4.5).unwrap();
        let ewf = Interval::new(1.5, 2.0, 3.0).unwrap();
        let pue = Pue::new(1.2).unwrap();
        let band = operational_interval(e, wue, pue, ewf);
        let point = 1.0e6 * (3.0 + 1.2 * 2.0);
        assert!(band.contains(point));
        assert!((band.mid - point).abs() < 1e-6 * point);
        assert!(band.lo < point && band.hi > point);
    }

    #[test]
    fn carbon_band_for_coal_mix_is_tight_relative_to_hydro() {
        let coal = EnergyMix::single(EnergySource::Coal);
        let c = mix_carbon_interval(&coal);
        assert_eq!(c.mid, 820.0);
        assert!(c.relative_uncertainty() < 0.15);
        let hydro = EnergyMix::single(EnergySource::Hydro);
        assert!(mix_carbon_interval(&hydro).relative_uncertainty() > 1.0);
    }
}
