//! The Fig. 4 embodied-vs-operational ratio analysis.
//!
//! For a system with embodied water `W_emb` (priced at the manufacturing
//! site's WSI) and annual operational water `W_op` (priced at the
//! operating site's WSI), the scarcity-weighted ratio over a service life
//! of `T` years is
//!
//! `ratio = (W_emb · WSI_mfg) / (T · W_op · WSI_op)`
//!
//! Fig. 4 sweeps the two WSIs: the region where `ratio ≥ 1` ("below the
//! blue line") is where embodied water dominates. High EWF/WUE (case a)
//! shrinks it; low EWF/WUE (case b) expands it.

use thirstyflops_units::Liters;

/// A 2-D grid of embodied/operational ratios over (mfg WSI, op WSI).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RatioGrid {
    /// Manufacturing-site WSI axis values.
    pub mfg_wsi: Vec<f64>,
    /// Operating-site WSI axis values.
    pub op_wsi: Vec<f64>,
    /// `ratios[i][j]` for `mfg_wsi[i]` × `op_wsi[j]`.
    pub ratios: Vec<Vec<f64>>,
}

impl RatioGrid {
    /// Sweeps the ratio over log-spaced WSI axes.
    ///
    /// `embodied` is the one-time embodied water; `annual_operational`
    /// the per-year operational water; `lifetime_years` the service life
    /// that amortizes the comparison.
    pub fn sweep(
        embodied: Liters,
        annual_operational: Liters,
        lifetime_years: f64,
        axis_points: usize,
    ) -> Result<RatioGrid, String> {
        if annual_operational.value() <= 0.0 || lifetime_years <= 0.0 {
            return Err("operational water and lifetime must be positive".into());
        }
        if axis_points < 2 {
            return Err("need at least two axis points".into());
        }
        // WSI from 0.1 to 100 (Table 2's data range), log-spaced.
        let axis: Vec<f64> = (0..axis_points)
            .map(|i| {
                let t = i as f64 / (axis_points - 1) as f64;
                10f64.powf(-1.0 + 3.0 * t)
            })
            .collect();
        let op_total = annual_operational.value() * lifetime_years;
        let ratios = axis
            .iter()
            .map(|&mfg| {
                axis.iter()
                    .map(|&op| embodied.value() * mfg / (op_total * op))
                    .collect()
            })
            .collect();
        Ok(RatioGrid {
            mfg_wsi: axis.clone(),
            op_wsi: axis,
            ratios,
        })
    }

    /// Fraction of grid cells where the embodied component dominates
    /// (ratio ≥ 1) — the "area below the blue line".
    pub fn embodied_dominant_fraction(&self) -> f64 {
        let total = self.mfg_wsi.len() * self.op_wsi.len();
        let dominant = self.ratios.iter().flatten().filter(|&&r| r >= 1.0).count();
        dominant as f64 / total as f64
    }

    /// Ratio at specific axis indices.
    pub fn at(&self, mfg_idx: usize, op_idx: usize) -> f64 {
        self.ratios[mfg_idx][op_idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_monotone_in_the_right_directions() {
        let g = RatioGrid::sweep(Liters::new(1e6), Liters::new(1e6), 5.0, 16).unwrap();
        // Increasing mfg WSI raises the ratio; increasing op WSI lowers it.
        for j in 0..16 {
            for i in 1..16 {
                assert!(g.at(i, j) > g.at(i - 1, j));
            }
        }
        for i in 0..16 {
            for j in 1..16 {
                assert!(g.at(i, j) < g.at(i, j - 1));
            }
        }
    }

    #[test]
    fn fig4_low_operational_water_expands_embodied_region() {
        // Case (a): high EWF/WUE → large operational water.
        let high_op = RatioGrid::sweep(Liters::new(1e7), Liters::new(5e7), 5.0, 32).unwrap();
        // Case (b): low EWF/WUE → small operational water.
        let low_op = RatioGrid::sweep(Liters::new(1e7), Liters::new(5e6), 5.0, 32).unwrap();
        assert!(
            low_op.embodied_dominant_fraction() > high_op.embodied_dominant_fraction(),
            "case b {} vs case a {}",
            low_op.embodied_dominant_fraction(),
            high_op.embodied_dominant_fraction()
        );
    }

    #[test]
    fn scarce_mfg_site_with_wet_op_site_flips_dominance() {
        // Takeaway 2: fab in a water-scarce region + datacenter in a
        // water-secure region → embodied can exceed operational even when
        // raw volumes say otherwise.
        let g = RatioGrid::sweep(Liters::new(1e6), Liters::new(2e6), 1.0, 16).unwrap();
        // Raw ratio is 0.5 (< 1) at equal WSIs…
        let mid = 8;
        assert!(g.at(mid, mid) < 1.0);
        // …but mfg WSI at the top of the axis and op WSI at the bottom
        // dominates.
        assert!(g.at(15, 0) > 1.0);
    }

    #[test]
    fn validation() {
        assert!(RatioGrid::sweep(Liters::new(1.0), Liters::ZERO, 5.0, 8).is_err());
        assert!(RatioGrid::sweep(Liters::new(1.0), Liters::new(1.0), 0.0, 8).is_err());
        assert!(RatioGrid::sweep(Liters::new(1.0), Liters::new(1.0), 5.0, 1).is_err());
    }

    #[test]
    fn axis_spans_table2_wsi_range() {
        let g = RatioGrid::sweep(Liters::new(1.0), Liters::new(1.0), 1.0, 8).unwrap();
        assert!((g.mfg_wsi[0] - 0.1).abs() < 1e-9);
        assert!((g.mfg_wsi[7] - 100.0).abs() < 1e-6);
    }
}
