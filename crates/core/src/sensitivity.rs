//! Parameter sensitivity: which Table 2 inputs actually move the answer.
//!
//! The paper's Table 2 is a checklist of ~20 parameters; practitioners
//! need to know which ones deserve measurement effort. For the
//! multiplicative model structure here the **elasticities** (d log output
//! / d log input) are exact and cheap:
//!
//! * operational water `E·(WUE + PUE·EWF)`: elasticity 1 in `E`, the
//!   *direct share* in WUE, the *indirect share* in both PUE and EWF;
//! * embodied water: each component's share is its elasticity with
//!   respect to its own factor (WPC, die area) and `−share` w.r.t. yield.
//!
//! Ranked elasticities tell a facility which single measurement narrows
//! the estimate most.

use crate::embodied::EmbodiedBreakdown;
use crate::simulate::AnnualReport;

/// One parameter's leverage on an output.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Elasticity {
    /// Parameter symbol (Table 2 naming).
    pub parameter: &'static str,
    /// d log(output) / d log(parameter): a 1 % change in the parameter
    /// moves the output by `elasticity` percent.
    pub elasticity: f64,
}

/// Elasticities of the **operational** water total, sorted by descending
/// magnitude.
pub fn operational_elasticities(report: &AnnualReport) -> Vec<Elasticity> {
    let direct = report.direct_share.value();
    let indirect = 1.0 - direct;
    let mut rows = vec![
        Elasticity {
            parameter: "E",
            elasticity: 1.0,
        },
        Elasticity {
            parameter: "WUE",
            elasticity: direct,
        },
        Elasticity {
            parameter: "PUE",
            elasticity: indirect,
        },
        Elasticity {
            parameter: "EWF",
            elasticity: indirect,
        },
    ];
    rows.sort_by(|a, b| b.elasticity.abs().partial_cmp(&a.elasticity.abs()).unwrap());
    rows
}

/// Elasticities of the **embodied** water total with respect to each
/// component's driving factor, plus yield (negative: better yield, less
/// water), sorted by descending magnitude.
pub fn embodied_elasticities(breakdown: &EmbodiedBreakdown) -> Vec<Elasticity> {
    let total = breakdown.total().value().max(f64::MIN_POSITIVE);
    let share = |v: thirstyflops_units::Liters| v.value() / total;
    let processor_share = share(breakdown.processors());
    let mut rows = vec![
        Elasticity {
            parameter: "A_die (UPW+PCW+WPA)",
            elasticity: processor_share,
        },
        Elasticity {
            parameter: "Yield",
            elasticity: -processor_share,
        },
        Elasticity {
            parameter: "WPC_DRAM x Capacity",
            elasticity: share(breakdown.dram),
        },
        Elasticity {
            parameter: "WPC_HDD x Capacity",
            elasticity: share(breakdown.hdd),
        },
        Elasticity {
            parameter: "WPC_SSD x Capacity",
            elasticity: share(breakdown.ssd),
        },
        Elasticity {
            parameter: "W_IC x N_IC",
            elasticity: share(breakdown.packaging),
        },
    ];
    rows.sort_by(|a, b| b.elasticity.abs().partial_cmp(&a.elasticity.abs()).unwrap());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operational::OperationalBreakdown;
    use crate::simulate::FootprintModel;
    use thirstyflops_catalog::{SystemId, SystemSpec};
    use thirstyflops_units::{KilowattHours, LitersPerKilowattHour, Pue};

    #[test]
    fn operational_elasticities_sum_to_two() {
        // E contributes 1; WUE + (PUE or EWF) partition the second unit
        // (PUE and EWF each carry the full indirect share, so the sum is
        // 1 + direct + 2·indirect = 2 + indirect).
        let report = FootprintModel::reference(SystemId::Polaris).annual_report(5);
        let rows = operational_elasticities(&report);
        let sum: f64 = rows.iter().map(|r| r.elasticity).sum();
        let indirect = 1.0 - report.direct_share.value();
        assert!((sum - (2.0 + indirect)).abs() < 1e-9);
        // Sorted descending by magnitude, E first.
        assert_eq!(rows[0].parameter, "E");
        assert!(rows
            .windows(2)
            .all(|w| w[0].elasticity.abs() >= w[1].elasticity.abs()));
    }

    #[test]
    fn analytic_elasticity_matches_numerical_perturbation() {
        // Perturb WUE by 1 % and compare against the analytic direct-share
        // elasticity.
        let e = KilowattHours::new(1e6);
        let wue = LitersPerKilowattHour::new(3.0);
        let pue = Pue::new(1.4).unwrap();
        let ewf = LitersPerKilowattHour::new(2.5);
        let base = OperationalBreakdown::from_totals(e, wue, pue, ewf);
        let bumped =
            OperationalBreakdown::from_totals(e, LitersPerKilowattHour::new(3.0 * 1.01), pue, ewf);
        let numerical = (bumped.total().value() / base.total().value() - 1.0) / 0.01;
        let analytic = base.direct_share().value();
        assert!(
            (numerical - analytic).abs() < 1e-6,
            "numerical {numerical} vs analytic {analytic}"
        );
    }

    #[test]
    fn frontier_embodied_is_hdd_and_die_driven() {
        let b = EmbodiedBreakdown::for_system(&SystemSpec::reference(SystemId::Frontier));
        let rows = embodied_elasticities(&b);
        // The top levers are the processors' die factor (and its mirror,
        // yield) followed by the HDD capacity term.
        let top3: Vec<&str> = rows.iter().take(3).map(|r| r.parameter).collect();
        assert!(top3.contains(&"A_die (UPW+PCW+WPA)"), "{top3:?}");
        assert!(top3.contains(&"WPC_HDD x Capacity"), "{top3:?}");
        // Yield is the mirror of the die term.
        let die = rows
            .iter()
            .find(|r| r.parameter.starts_with("A_die"))
            .unwrap();
        let yld = rows.iter().find(|r| r.parameter == "Yield").unwrap();
        assert!((die.elasticity + yld.elasticity).abs() < 1e-12);
    }

    #[test]
    fn embodied_positive_elasticities_sum_to_one() {
        for id in SystemId::PAPER {
            let b = EmbodiedBreakdown::for_system(&SystemSpec::reference(id));
            let rows = embodied_elasticities(&b);
            let sum: f64 = rows
                .iter()
                .filter(|r| r.elasticity > 0.0)
                .map(|r| r.elasticity)
                .sum();
            assert!((sum - 1.0).abs() < 1e-9, "{id}: {sum}");
        }
    }
}
