//! The process-wide memoized simulation substrate.
//!
//! Every footprint report, figure, scenario sweep, and cold HTTP request
//! bottoms out in [`SystemYear::simulate`] — an 8760-hour telemetry
//! simulation. Two of its three sub-simulations are *deterministic per
//! configuration and independent of the caller's seed*:
//!
//! * the grid year ([`GridRegion::simulate_year`]) depends only on the
//!   region preset;
//! * the climate → WUE series depends only on the
//!   [`ClimatePreset`].
//!
//! This module memoizes both, plus whole simulated years keyed by
//! `(spec fingerprint, seed)`, in sharded process-wide caches:
//!
//! * **Single-flight first touch** — concurrent misses on one key block
//!   on a shared [`OnceLock`] slot, so each key is computed exactly once
//!   no matter how many threads race (see the unit test below and
//!   `tests/simcache.rs`).
//! * **Determinism** — a cache hit returns a value produced by the same
//!   pure function a miss would run, so cached and uncached outputs are
//!   byte-identical at every thread count (`docs/CONCURRENCY.md`).
//! * **Observability** — per-layer hit/miss/entry/eviction counters,
//!   exposed via [`stats`] and served at `GET /v1/cache/stats`.
//! * **Escape hatch** — `thirstyflops --no-sim-cache` or
//!   `THIRSTYFLOPS_NO_SIM_CACHE=1` disables every layer via
//!   [`set_enabled`]; `tests/simcache.rs` uses it to prove bit-identity.
//!
//! The whole-year layer is bounded (LRU on whole entries) because seeds
//! are caller-controlled and therefore unbounded; the grid and WUE
//! layers are keyed by small closed enums and need no bound.
//!
//! [`SystemYear::simulate`]: crate::SystemYear::simulate
//! [`GridRegion::simulate_year`]: thirstyflops_grid::GridRegion::simulate_year

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use thirstyflops_catalog::SystemSpec;
use thirstyflops_grid::{GridRegion, GridYear, RegionId};
use thirstyflops_obs::span;
use thirstyflops_obs::Counter;
use thirstyflops_timeseries::HourlySeries;
use thirstyflops_weather::ClimatePreset;

use crate::simulate::SystemYear;

/// `DefaultHasher::default()` is SipHash with fixed keys — deterministic
/// across processes, unlike `RandomState`.
type FixedState = BuildHasherDefault<DefaultHasher>;

/// One cache entry: the shared compute slot plus its LRU/TTL stamps.
#[derive(Debug)]
struct Slot<V> {
    /// Single-flight cell: the first toucher computes into it, racing
    /// threads block on `get_or_init` and share the one `Arc`.
    cell: Arc<OnceLock<Arc<V>>>,
    last_used: u64,
    /// When the slot was created, for the optional TTL. In-flight slots
    /// never expire (their computing thread holds the cell).
    inserted: Instant,
}

/// A sharded, single-flight memo cache from `K` to `Arc<V>`.
///
/// The compute closure runs outside the shard lock (only the slot
/// lookup/insert holds it), so a slow simulation never blocks unrelated
/// keys in the same shard; concurrent misses on the *same* key block on
/// the slot's `OnceLock` and share the winner's value.
#[derive(Debug)]
pub struct MemoCache<K, V> {
    shards: Vec<Mutex<HashMap<K, Slot<V>, FixedState>>>,
    /// Per-shard entry bound; `0` = unbounded.
    capacity_per_shard: usize,
    /// Optional time-to-live; an expired completed slot is dropped on
    /// lookup (counted as an eviction) and recomputed.
    ttl: Option<Duration>,
    tick: AtomicU64,
    /// Hit/miss/eviction counters. Detached by default; the global
    /// layers swap in registry-backed handles via
    /// [`with_counters`](MemoCache::with_counters) so the same atomics
    /// feed both `stats()` and `/v1/metrics`.
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

/// Counters for one cache layer, as served by `GET /v1/cache/stats`.
///
/// `hits` counts lookups that found an existing slot — including racers
/// that blocked on an in-flight first touch (they did not compute).
/// `misses` counts first touches, i.e. actual computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LayerStats {
    /// Lookups served from an existing entry (no simulation ran).
    pub hits: u64,
    /// First touches that computed and inserted the value.
    pub misses: u64,
    /// Live entries across all shards.
    pub entries: u64,
    /// Entries dropped by the LRU bound (0 for unbounded layers).
    pub evictions: u64,
}

impl<K: Eq + Hash + Clone, V> MemoCache<K, V> {
    /// A cache with `shards` independent locks (clamped to ≥ 1) and an
    /// approximate `capacity` bound spread across them (`0` =
    /// unbounded). The real bound is per shard, so the total can sit
    /// slightly under `capacity` when keys hash unevenly.
    pub fn new(shards: usize, capacity: usize) -> MemoCache<K, V> {
        Self::with_ttl(shards, capacity, None)
    }

    /// Like [`new`](MemoCache::new) with an additional time-to-live:
    /// a completed entry older than `ttl` is dropped on lookup (counted
    /// as an eviction) and recomputed. In-flight entries never expire.
    /// `serve::ResultCache` builds on this for its `--cache-ttl` flag.
    pub fn with_ttl(shards: usize, capacity: usize, ttl: Option<Duration>) -> MemoCache<K, V> {
        let shards = shards.max(1);
        MemoCache {
            capacity_per_shard: if capacity == 0 {
                0
            } else {
                capacity.div_ceil(shards).max(1)
            },
            ttl,
            shards: (0..shards).map(|_| Mutex::default()).collect(),
            tick: AtomicU64::new(0),
            hits: Counter::detached(),
            misses: Counter::detached(),
            evictions: Counter::detached(),
        }
    }

    /// Replaces the detached counters with caller-provided handles —
    /// the global layers pass registry-backed counters so one set of
    /// atomics feeds `stats()`, `/v1/cache/stats`, and `/v1/metrics`.
    /// Instance-local caches keep the detached defaults.
    pub fn with_counters(mut self, hits: Counter, misses: Counter, evictions: Counter) -> Self {
        self.hits = hits;
        self.misses = misses;
        self.evictions = evictions;
        self
    }

    /// The effective total entry bound: the configured capacity rounded
    /// up to a full shard multiple (`0` = unbounded).
    pub fn capacity(&self) -> u64 {
        (self.capacity_per_shard * self.shards.len()) as u64
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> u64 {
        self.shards.len() as u64
    }

    /// The configured time-to-live, if any.
    pub fn ttl(&self) -> Option<Duration> {
        self.ttl
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, Slot<V>, FixedState>> {
        let mut hasher = DefaultHasher::default();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Returns the cached value for `key`, or computes, caches, and
    /// returns it. Single-flight: under concurrent misses on one key,
    /// exactly one caller runs `compute`; the rest block and share the
    /// resulting `Arc`.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let cell = {
            let mut map = self.shard(&key).lock().expect("simcache shard poisoned");
            if let (Some(ttl), Some(slot)) = (self.ttl, map.get(&key)) {
                // An expired *completed* entry is dropped here and the
                // lookup falls through to the miss path below; in-flight
                // slots are left alone (their computing thread holds the
                // cell and will complete it).
                if slot.cell.get().is_some() && slot.inserted.elapsed() >= ttl {
                    map.remove(&key);
                    self.evictions.inc();
                }
            }
            if let Some(slot) = map.get_mut(&key) {
                slot.last_used = tick;
                self.hits.inc();
                Arc::clone(&slot.cell)
            } else {
                self.misses.inc();
                if self.capacity_per_shard > 0 {
                    // Evict least-recently-used *completed* entries until
                    // the insert below fits the bound; in-flight slots are
                    // never dropped from under their computing thread, so
                    // a burst of concurrent cold keys can transiently
                    // overfill a shard — the loop (not a single eviction)
                    // is what drains it back under the bound afterwards.
                    while map.len() >= self.capacity_per_shard {
                        let victim = map
                            .iter()
                            .filter(|(_, s)| s.cell.get().is_some())
                            .min_by_key(|(_, s)| s.last_used)
                            .map(|(k, _)| k.clone());
                        match victim {
                            Some(victim) => {
                                map.remove(&victim);
                                self.evictions.inc();
                            }
                            None => break,
                        }
                    }
                }
                let cell = Arc::new(OnceLock::new());
                map.insert(
                    key,
                    Slot {
                        cell: Arc::clone(&cell),
                        last_used: tick,
                        inserted: Instant::now(),
                    },
                );
                cell
            }
        };
        Arc::clone(cell.get_or_init(|| Arc::new(compute())))
    }

    /// Current counters.
    pub fn stats(&self) -> LayerStats {
        LayerStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("simcache shard poisoned").len() as u64)
                .sum(),
            evictions: self.evictions.get(),
        }
    }
}

/// Counters for every simulation-cache layer (`GET /v1/cache/stats`,
/// `docs/PERFORMANCE.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SimCacheStats {
    /// False when `--no-sim-cache` / `THIRSTYFLOPS_NO_SIM_CACHE` turned
    /// the substrate off.
    pub enabled: bool,
    /// Whole `Arc<SystemYear>`s keyed by `(spec fingerprint, seed)`.
    pub system_years: LayerStats,
    /// `GridYear`s keyed by region preset.
    pub grid_years: LayerStats,
    /// Climate → WUE hourly series keyed by climate preset.
    pub wue_series: LayerStats,
}

fn disabled_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let raw = std::env::var("THIRSTYFLOPS_NO_SIM_CACHE").unwrap_or_default();
        AtomicBool::new(matches!(raw.as_str(), "1" | "true" | "yes"))
    })
}

/// True when the memo layers are active (the default).
pub fn enabled() -> bool {
    !disabled_flag().load(Ordering::Relaxed)
}

/// Turns the whole substrate on or off at runtime — the CLI's
/// `--no-sim-cache` escape hatch. Already-cached entries are kept but
/// not consulted while disabled.
pub fn set_enabled(on: bool) {
    disabled_flag().store(!on, Ordering::Relaxed);
}

/// Registry-backed hit/miss/eviction counters for one global layer,
/// labeled `{cache="<layer>"}` (`docs/OBSERVABILITY.md`).
pub(crate) fn layer_counters(layer: &'static str) -> (Counter, Counter, Counter) {
    use thirstyflops_obs::registry::counter_labeled;
    let labels = [("cache", layer)];
    (
        counter_labeled(
            "thirstyflops_simcache_hits_total",
            &labels,
            "Simulation-cache lookups served from an existing entry.",
        ),
        counter_labeled(
            "thirstyflops_simcache_misses_total",
            &labels,
            "Simulation-cache first touches that computed the value.",
        ),
        counter_labeled(
            "thirstyflops_simcache_evictions_total",
            &labels,
            "Simulation-cache entries dropped by LRU bound or TTL.",
        ),
    )
}

fn year_cache() -> &'static MemoCache<(String, u64), SystemYear> {
    static CACHE: OnceLock<MemoCache<(String, u64), SystemYear>> = OnceLock::new();
    // ~350 KB per cached year ⇒ the 256-entry bound caps the layer near
    // 90 MB even under an adversarial seed sweep.
    CACHE.get_or_init(|| {
        thirstyflops_obs::registry::gauge(
            "thirstyflops_simcache_enabled",
            "1 while the simulation-cache substrate is active, 0 under --no-sim-cache.",
            || {
                if enabled() {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let (hits, misses, evictions) = layer_counters("system_years");
        MemoCache::new(8, 256).with_counters(hits, misses, evictions)
    })
}

fn grid_cache() -> &'static MemoCache<RegionId, GridYear> {
    static CACHE: OnceLock<MemoCache<RegionId, GridYear>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let (hits, misses, evictions) = layer_counters("grid_years");
        MemoCache::new(2, 0).with_counters(hits, misses, evictions)
    })
}

fn wue_cache() -> &'static MemoCache<ClimatePreset, HourlySeries> {
    static CACHE: OnceLock<MemoCache<ClimatePreset, HourlySeries>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let (hits, misses, evictions) = layer_counters("wue_series");
        MemoCache::new(2, 0).with_counters(hits, misses, evictions)
    })
}

/// The cache key of a spec: its canonical JSON rendering. Collision-free
/// by construction (distinct specs render distinctly), deterministic
/// across processes, and cheap next to an 8760-hour simulation.
pub fn spec_fingerprint(spec: &SystemSpec) -> String {
    serde_json::to_string(spec).expect("catalog specs always serialize")
}

/// The memoized simulated year for `(spec, seed)` — the engine behind
/// [`SystemYear::simulate`](crate::SystemYear::simulate). A repeat call
/// is an `Arc` clone; a miss computes once (single-flight) through the
/// shared grid/WUE layers so that cold-but-related specs still reuse
/// sub-simulations.
pub fn system_year(spec: SystemSpec, seed: u64) -> Arc<SystemYear> {
    // The span covers the demand (hit or miss, cache on or off), so its
    // invocation count is the number of system-years *asked for* — a
    // pure function of the command, identical across cache modes.
    let _span = span::span(span::CACHE_LOOKUP);
    if !enabled() {
        return Arc::new(SystemYear::compute(spec, seed, false));
    }
    // Injected cache poisoning (`docs/ROBUSTNESS.md`): a fired
    // `simcache_poison` fault forces this lookup down the uncached
    // recompute path — exercising the miss machinery under load without
    // ever storing a wrong value. Because hits and misses return
    // byte-identical years (the determinism contract above), poisoning
    // must never change any response body; chaos replays verify that.
    // The site lives only here, on the whole-year layer — the grid/WUE
    // layers below it are reached through this entry point.
    if thirstyflops_faults::global_simcache_poisoned() {
        return Arc::new(SystemYear::compute(spec, seed, false));
    }
    let key = (spec_fingerprint(&spec), seed);
    year_cache().get_or_compute(key, move || SystemYear::compute(spec, seed, true))
}

/// The memoized grid year for a region preset. Seed-independent: every
/// system in `region` shares one computation.
pub fn grid_year(region: RegionId) -> Arc<GridYear> {
    let compute = move || GridRegion::preset(region).simulate_year();
    if !enabled() {
        return Arc::new(compute());
    }
    grid_cache().get_or_compute(region, compute)
}

/// The memoized climate → WUE hourly series for a climate preset.
/// Seed-independent: every system with `preset`'s climate shares one
/// weather + WUE computation.
pub fn wue_series(preset: ClimatePreset) -> Arc<HourlySeries> {
    let compute = move || {
        let climate = preset.generate();
        preset.wue_model().hourly_series(&climate)
    };
    if !enabled() {
        return Arc::new(compute());
    }
    wue_cache().get_or_compute(preset, compute)
}

/// Counters for all layers.
pub fn stats() -> SimCacheStats {
    SimCacheStats {
        enabled: enabled(),
        system_years: year_cache().stats(),
        grid_years: grid_cache().stats(),
        wue_series: wue_cache().stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Tests touching the global layers / enabled flag serialize on this
    /// lock so the harness's test threads don't race each other's
    /// assertions.
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn repeat_lookup_is_a_hit_and_shares_the_arc() {
        let cache: MemoCache<u32, String> = MemoCache::new(4, 0);
        let first = cache.get_or_compute(7, || "value".to_string());
        let second = cache.get_or_compute(7, || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn racing_first_touches_compute_exactly_once() {
        let cache: MemoCache<u32, u64> = MemoCache::new(4, 0);
        let computed = AtomicUsize::new(0);
        let values: Vec<Arc<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        cache.get_or_compute(42, || {
                            computed.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so late arrivals
                            // genuinely block on the in-flight compute.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            4242
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "single-flight");
        assert!(values.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn lru_bound_evicts_the_least_recent_entry() {
        // capacity 3 over 1 shard ⇒ per-shard bound 3.
        let cache: MemoCache<u32, u32> = MemoCache::new(1, 3);
        for k in 0..3 {
            cache.get_or_compute(k, move || k);
        }
        // Touch 0 so 1 becomes the LRU victim.
        cache.get_or_compute(0, || unreachable!("hit"));
        cache.get_or_compute(3, || 3);
        let stats = cache.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.evictions, 1);
        // 1 was evicted and recomputes; 0 and 2 survived.
        let recomputed = AtomicUsize::new(0);
        cache.get_or_compute(1, || {
            recomputed.fetch_add(1, Ordering::SeqCst);
            1
        });
        assert_eq!(recomputed.load(Ordering::SeqCst), 1);
        cache.get_or_compute(0, || unreachable!("0 was touched, must survive"));
    }

    #[test]
    fn ttl_expires_completed_entries_as_evictions() {
        let cache: MemoCache<u32, u32> = MemoCache::with_ttl(1, 0, Some(Duration::from_millis(30)));
        cache.get_or_compute(1, || 1);
        cache.get_or_compute(1, || unreachable!("fresh entry is a hit"));
        std::thread::sleep(Duration::from_millis(60));
        let recomputed = AtomicUsize::new(0);
        cache.get_or_compute(1, || {
            recomputed.fetch_add(1, Ordering::SeqCst);
            1
        });
        assert_eq!(recomputed.load(Ordering::SeqCst), 1, "expired ⇒ recompute");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 1, "the recomputed entry is live again");
    }

    #[test]
    fn overfilled_shard_drains_back_under_the_bound() {
        // In-flight slots are never evicted, so a burst of concurrent
        // cold keys can transiently exceed the bound; the next miss must
        // drain the shard back under it (eviction loops, it doesn't stop
        // after one victim).
        let cache: MemoCache<u32, u32> = MemoCache::new(1, 2);
        let barrier = std::sync::Barrier::new(3);
        std::thread::scope(|scope| {
            for k in 0..3u32 {
                let barrier = &barrier;
                let cache = &cache;
                scope.spawn(move || {
                    cache.get_or_compute(k, move || {
                        // Hold all three slots in flight at once.
                        barrier.wait();
                        k
                    })
                });
            }
        });
        assert_eq!(cache.stats().entries, 3, "burst overfills transiently");
        cache.get_or_compute(9, || 9);
        let stats = cache.stats();
        assert!(
            stats.entries <= 2,
            "next miss drains the overfill, got {} entries",
            stats.entries
        );
    }

    #[test]
    fn disabling_bypasses_the_layers_without_clearing_them() {
        let _guard = global_lock();
        // Uses the global flag, so restore it even on panic-free exit.
        assert!(enabled(), "tests start with the cache on");
        set_enabled(false);
        let off = stats();
        assert!(!off.enabled);
        let a = grid_year(RegionId::Kansai);
        let b = grid_year(RegionId::Kansai);
        assert!(
            !Arc::ptr_eq(&a, &b),
            "disabled layer must compute fresh values"
        );
        assert_eq!(a.ewf().values(), b.ewf().values());
        set_enabled(true);
        assert!(stats().enabled);
    }

    #[test]
    fn grid_layer_shares_one_computation_per_region() {
        let _guard = global_lock();
        let a = grid_year(RegionId::Tennessee);
        let b = grid_year(RegionId::Tennessee);
        assert!(Arc::ptr_eq(&a, &b), "repeat is an Arc clone");
        assert_eq!(a.region(), RegionId::Tennessee);
    }

    #[test]
    fn wue_layer_shares_one_computation_per_preset() {
        let _guard = global_lock();
        let a = wue_series(ClimatePreset::Kobe);
        let b = wue_series(ClimatePreset::Kobe);
        assert!(Arc::ptr_eq(&a, &b));
        // Same bytes as the direct computation.
        let direct = ClimatePreset::Kobe
            .wue_model()
            .hourly_series(&ClimatePreset::Kobe.generate());
        assert_eq!(a.values(), direct.values());
    }

    #[test]
    fn fingerprints_distinguish_specs() {
        use thirstyflops_catalog::SystemId;
        let a = SystemSpec::reference(SystemId::Polaris);
        let mut b = SystemSpec::reference(SystemId::Polaris);
        b.nodes += 1;
        assert_ne!(spec_fingerprint(&a), spec_fingerprint(&b));
        assert_eq!(spec_fingerprint(&a), spec_fingerprint(&a.clone()));
    }
}
