//! The Table 2 parameter checklist as data: every input the framework
//! needs, whether it is a raw input or derived, its expected range, data
//! source, and unit. HPC practitioners use this as the "what do I need to
//! collect" checklist the paper describes.

/// Whether a parameter is provided by the user or derived by the tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ParamKind {
    /// Provided as input (Table 2's ❍).
    Input,
    /// Derived from other parameters (Table 2's ▲).
    Derived,
}

/// Which footprint component the parameter feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ParamGroup {
    /// Embodied water footprint (Eq. 2–5).
    Embodied,
    /// Operational water footprint (Eq. 6–9).
    Operational,
    /// Water withdrawal (Table 3).
    Withdrawal,
}

/// One row of the parameter checklist.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ParamRow {
    /// Symbol used in the equations.
    pub symbol: &'static str,
    /// Human description.
    pub description: &'static str,
    /// Input or derived.
    pub kind: ParamKind,
    /// Component group.
    pub group: ParamGroup,
    /// Expected data range (free text, mirroring the paper).
    pub range: &'static str,
    /// Where to obtain it.
    pub source: &'static str,
    /// Unit.
    pub unit: &'static str,
}

/// The full Table 2 (+ Table 3) parameter checklist.
pub fn parameter_table() -> Vec<ParamRow> {
    use ParamGroup::*;
    use ParamKind::*;
    vec![
        ParamRow {
            symbol: "N_IC",
            description: "Number of ICs (CPU/GPU/memory/storage)",
            kind: Input,
            group: Embodied,
            range: "9-26 (vary across hardware)",
            source: "hardware design",
            unit: "-",
        },
        ParamRow {
            symbol: "W_IC",
            description: "Packaging water overhead per IC",
            kind: Derived,
            group: Embodied,
            range: "0.6",
            source: "manufacturer (SPIL)",
            unit: "L",
        },
        ParamRow {
            symbol: "A_die",
            description: "Die size of processors (CPU/GPU)",
            kind: Input,
            group: Embodied,
            range: "vary across hardware",
            source: "CPU/GPU design (WikiChip/TechPowerUp)",
            unit: "mm^2",
        },
        ParamRow {
            symbol: "Yield",
            description: "Fab yield rate",
            kind: Input,
            group: Embodied,
            range: "0-1 (0.875 default)",
            source: "manufacturer",
            unit: "-",
        },
        ParamRow {
            symbol: "Location",
            description: "Manufacturing location of hardware",
            kind: Input,
            group: Embodied,
            range: "TSMC or GlobalFoundries",
            source: "manufacturer",
            unit: "-",
        },
        ParamRow {
            symbol: "Process Node",
            description: "Semiconductor process of CPU/GPU",
            kind: Input,
            group: Embodied,
            range: "3-28 (vary across hardware)",
            source: "CPU/GPU design",
            unit: "nm",
        },
        ParamRow {
            symbol: "UPW",
            description: "Ultrapure water during manufacturing",
            kind: Derived,
            group: Embodied,
            range: "5.9-14.2 (vary across process node)",
            source: "manufacturer (IEDM DTCO)",
            unit: "L",
        },
        ParamRow {
            symbol: "PCW",
            description: "Process cooling water during manufacturing",
            kind: Derived,
            group: Embodied,
            range: "vary across location and node",
            source: "manufacturer",
            unit: "L",
        },
        ParamRow {
            symbol: "WPA",
            description: "Water for fab power generation",
            kind: Derived,
            group: Embodied,
            range: "vary across location and node",
            source: "manufacturer",
            unit: "L",
        },
        ParamRow {
            symbol: "WPC",
            description: "Water per capacity of DRAM/HDD/SSD",
            kind: Derived,
            group: Embodied,
            range: "0.8 (DRAM), 0.033 (HDD), 0.022 (SSD)",
            source: "manufacturer (SK hynix, Seagate)",
            unit: "L/GB",
        },
        ParamRow {
            symbol: "Capacity",
            description: "Capacity of DRAM/HDD/SSD",
            kind: Input,
            group: Embodied,
            range: "vary across hardware",
            source: "manufacturer",
            unit: "GB",
        },
        ParamRow {
            symbol: "E",
            description: "Energy consumption",
            kind: Input,
            group: Operational,
            range: "vary across applications/hardware",
            source: "hardware profiling / job logs",
            unit: "kWh",
        },
        ParamRow {
            symbol: "T_wb",
            description: "Site wet-bulb temperature",
            kind: Input,
            group: Operational,
            range: "vary across HPC locations",
            source: "weather report",
            unit: "degC",
        },
        ParamRow {
            symbol: "WUE",
            description: "Water usage effectiveness",
            kind: Derived,
            group: Operational,
            range: ">0.05",
            source: "wet-bulb temperature",
            unit: "L/kWh",
        },
        ParamRow {
            symbol: "PUE",
            description: "Power usage effectiveness",
            kind: Input,
            group: Operational,
            range: ">=1 (Marconi 1.25, Fugaku 1.4, Polaris 1.65, Frontier 1.05)",
            source: "HPC report",
            unit: "-",
        },
        ParamRow {
            symbol: "mix%",
            description: "Percentage energy mix usage",
            kind: Input,
            group: Operational,
            range: "0-100",
            source: "power grid (Electricity Maps)",
            unit: "%",
        },
        ParamRow {
            symbol: "EWF_energy",
            description: "Energy water factor of sources",
            kind: Derived,
            group: Operational,
            range: "1-17",
            source: "environment report (NREL/WRI)",
            unit: "L/kWh",
        },
        ParamRow {
            symbol: "EWF",
            description: "Energy water factor of the HPC system",
            kind: Derived,
            group: Operational,
            range: "vary across locations",
            source: "mix% and EWF_energy",
            unit: "L/kWh",
        },
        ParamRow {
            symbol: "WSI_direct",
            description: "Direct water scarcity index",
            kind: Input,
            group: Operational,
            range: "0.1-100",
            source: "WSI report (AWARE)",
            unit: "-",
        },
        ParamRow {
            symbol: "WSI_indirect",
            description: "Indirect water scarcity index",
            kind: Input,
            group: Operational,
            range: "0.1-100",
            source: "WSI report and plant locations",
            unit: "-",
        },
        ParamRow {
            symbol: "W_discharge",
            description: "Reported discharge water",
            kind: Input,
            group: Withdrawal,
            range: "vary across systems",
            source: "facility report",
            unit: "L",
        },
        ParamRow {
            symbol: "L_k",
            description: "Outfall location factor",
            kind: Input,
            group: Withdrawal,
            range: "vary across HPC locations",
            source: "facility report",
            unit: "-",
        },
        ParamRow {
            symbol: "P_j",
            description: "Pollutant hazard factor",
            kind: Input,
            group: Withdrawal,
            range: "vary across pollutants",
            source: "discharge assay",
            unit: "-",
        },
        ParamRow {
            symbol: "rho",
            description: "Water reuse rate",
            kind: Input,
            group: Withdrawal,
            range: "0%-100%",
            source: "facility report",
            unit: "%",
        },
        ParamRow {
            symbol: "beta",
            description: "Potable/non-potable split",
            kind: Input,
            group: Withdrawal,
            range: "0%-100%",
            source: "facility report",
            unit: "%",
        },
        ParamRow {
            symbol: "S",
            description: "Source scarcity factor (potable/non-potable)",
            kind: Input,
            group: Withdrawal,
            range: "vary across water sources",
            source: "WSI report",
            unit: "-",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_all_groups() {
        let rows = parameter_table();
        assert!(rows.len() >= 20);
        for group in [
            ParamGroup::Embodied,
            ParamGroup::Operational,
            ParamGroup::Withdrawal,
        ] {
            assert!(rows.iter().any(|r| r.group == group), "{group:?}");
        }
        // Both kinds present.
        assert!(rows.iter().any(|r| r.kind == ParamKind::Input));
        assert!(rows.iter().any(|r| r.kind == ParamKind::Derived));
    }

    #[test]
    fn symbols_are_unique() {
        let rows = parameter_table();
        let mut seen = std::collections::HashSet::new();
        for r in &rows {
            assert!(seen.insert(r.symbol), "duplicate symbol {}", r.symbol);
            assert!(!r.description.is_empty());
            assert!(!r.unit.is_empty());
        }
    }

    #[test]
    fn paper_pue_values_recorded() {
        let rows = parameter_table();
        let pue = rows.iter().find(|r| r.symbol == "PUE").unwrap();
        for needle in ["1.25", "1.4", "1.65", "1.05"] {
            assert!(pue.range.contains(needle), "{needle}");
        }
    }
}
