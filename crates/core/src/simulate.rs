//! End-to-end glue: simulate a year of telemetry for a cataloged system
//! and evaluate the full footprint models over it.
//!
//! Simulation goes through the memoized substrate in [`crate::simcache`]:
//! [`SystemYear::simulate`] returns an `Arc<SystemYear>` so a repeated
//! `(system, seed)` is a pointer clone, and even a cold year reuses the
//! seed-independent grid and climate → WUE sub-simulations. The
//! uncached path ([`SystemYear::simulate_uncached`]) produces
//! byte-identical telemetry — `tests/simcache.rs` enforces it.

use std::sync::Arc;

use thirstyflops_catalog::{SystemId, SystemSpec};
use thirstyflops_grid::GridRegion;
use thirstyflops_timeseries::HourlySeries;
use thirstyflops_units::{Fraction, KilowattHours, Liters, LitersPerKilowattHour};
use thirstyflops_workload::{ClusterSim, PowerModel, TraceConfig, TraceGenerator};

use crate::embodied::EmbodiedBreakdown;
use crate::intensity::{self, WaterIntensity};
use crate::operational::OperationalBreakdown;
use crate::scarcity::ScarcityAdjustment;

/// One simulated year of hourly telemetry for a system: exactly the
/// inputs the paper extracts from production logs and public feeds.
#[derive(Debug, Clone)]
pub struct SystemYear {
    /// The system's catalog entry.
    pub spec: SystemSpec,
    /// Machine utilization in `[0, 1]`.
    pub utilization: HourlySeries,
    /// IT energy per hour, kWh.
    pub energy: HourlySeries,
    /// Water usage effectiveness, L/kWh.
    pub wue: HourlySeries,
    /// Energy water factor, L/kWh.
    pub ewf: HourlySeries,
    /// Grid carbon intensity, gCO₂/kWh.
    pub carbon: HourlySeries,
}

/// Per-system trace texture (job sizes/durations differ across centers;
/// values chosen to match each system's published workload character).
fn trace_shape(id: SystemId) -> (f64, f64) {
    // (mean duration hours, mean width fraction of machine)
    match id {
        SystemId::Marconi => (8.0, 0.02),
        SystemId::Fugaku => (6.0, 0.004),
        SystemId::Polaris => (5.0, 0.03),
        SystemId::Frontier => (10.0, 0.015),
        SystemId::Aurora => (8.0, 0.01),
        SystemId::ElCapitan => (12.0, 0.02),
    }
}

/// The seed-dependent workload path: jobs → utilization → IT energy.
/// This is the single source of truth for the per-lane ChaCha12 seeding
/// (`seed ^ id·φ64`) — both the scalar [`SystemYear::compute`] path and
/// the batched kernel ([`crate::batch`]) call it, so their RNG draws
/// cannot drift apart.
pub(crate) fn workload_series(spec: &SystemSpec, seed: u64) -> (HourlySeries, HourlySeries) {
    // Spans the actual trace + scheduling + power simulation — the cold
    // path's dominant stage. Invocations count simulations that truly
    // ran (memoized repeats don't re-enter).
    let _span = thirstyflops_obs::span::span(thirstyflops_obs::span::WORKLOAD_SIM);
    let (duration, width) = trace_shape(spec.id);
    let trace = TraceGenerator::new(TraceConfig {
        cluster_nodes: spec.nodes,
        target_utilization: spec.mean_utilization,
        mean_duration_hours: duration,
        mean_width_fraction: width,
        seed: seed ^ (spec.id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    })
    .expect("catalog trace configs are valid")
    .generate_year();
    let (utilization, _stats) = ClusterSim::new(spec.nodes)
        .expect("catalog systems have nodes")
        .simulate_year(&trace);
    let energy = PowerModel::new(spec).energy_series(&utilization);
    (utilization, energy)
}

impl SystemYear {
    /// Simulates a year for a cataloged reference system. `seed`
    /// decorrelates years (use the calendar year, e.g. 2023); all
    /// sub-simulators stay deterministic.
    ///
    /// Memoized: a repeated `(system, seed)` call returns an `Arc` clone
    /// of the first result — no re-simulation (observable through
    /// [`crate::simcache::stats`]). Disable with the CLI's
    /// `--no-sim-cache` or `THIRSTYFLOPS_NO_SIM_CACHE=1`; cached and
    /// uncached telemetry are byte-identical.
    pub fn simulate(id: SystemId, seed: u64) -> Arc<SystemYear> {
        Self::simulate_spec(SystemSpec::reference(id), seed)
    }

    /// Simulates a year for an arbitrary specification — custom node
    /// counts, regions, climates (e.g. synthetic fleet members or
    /// what-if variants of a reference system). Memoized by
    /// `(spec fingerprint, seed)` like [`SystemYear::simulate`].
    pub fn simulate_spec(spec: SystemSpec, seed: u64) -> Arc<SystemYear> {
        crate::simcache::system_year(spec, seed)
    }

    /// The fully uncached simulation: recomputes every sub-simulation and
    /// touches no process-wide state. This is the reference
    /// implementation the cached path must match byte for byte
    /// (`tests/simcache.rs`) and the cold-path workload
    /// `./ci.sh bench-json` tracks.
    pub fn simulate_uncached(spec: SystemSpec, seed: u64) -> SystemYear {
        Self::compute(spec, seed, false)
    }

    /// The actual simulation. With `shared_parts` the seed-independent
    /// grid and climate → WUE series come from [`crate::simcache`]'s
    /// sub-caches (values are byte-identical either way — each
    /// sub-simulator owns an independent RNG stream seeded from its own
    /// config, so sharing cannot perturb anything).
    pub(crate) fn compute(spec: SystemSpec, seed: u64, shared_parts: bool) -> SystemYear {
        use thirstyflops_obs::span;

        // Weather → WUE.
        let wue = {
            let _span = span::span(span::WUE_SERIES);
            if shared_parts {
                (*crate::simcache::wue_series(spec.climate)).clone()
            } else {
                let climate = spec.climate.generate();
                spec.climate.wue_model().hourly_series(&climate)
            }
        };

        // Grid → EWF + carbon intensity.
        let (ewf, carbon) = {
            let _span = span::span(span::GRID_KERNEL);
            if shared_parts {
                let grid_year = crate::simcache::grid_year(spec.region);
                (grid_year.ewf().clone(), grid_year.carbon().clone())
            } else {
                let grid_year = GridRegion::preset(spec.region).simulate_year();
                (grid_year.ewf().clone(), grid_year.carbon().clone())
            }
        };

        // Jobs → utilization → energy (shared with the batched kernel).
        let (utilization, energy) = workload_series(&spec, seed);

        SystemYear {
            spec,
            utilization,
            energy,
            wue,
            ewf,
            carbon,
        }
    }

    /// Hourly water intensity `WI = WUE + PUE·EWF`.
    pub fn water_intensity(&self) -> HourlySeries {
        intensity::hourly_water_intensity(&self.wue, self.spec.pue, &self.ewf)
    }

    /// Hourly indirect water intensity `PUE·EWF`.
    pub fn indirect_intensity(&self) -> HourlySeries {
        intensity::hourly_indirect_intensity(self.spec.pue, &self.ewf)
    }

    /// Hourly operational water, liters per hour.
    pub fn hourly_water(&self) -> HourlySeries {
        self.energy.mul(&self.water_intensity())
    }

    /// Hourly operational water against a water-intensity series the
    /// caller already derived — the reuse path for exports that need
    /// both WI and water (deriving WI twice costs two year-long
    /// allocations and 8760 fused multiply-adds).
    fn hourly_water_with(&self, water_intensity: &HourlySeries) -> HourlySeries {
        self.energy.mul(water_intensity)
    }

    /// Annual IT energy.
    pub fn annual_energy(&self) -> KilowattHours {
        KilowattHours::new(self.energy.total())
    }

    /// Operational breakdown over the year (series-faithful).
    pub fn operational(&self) -> OperationalBreakdown {
        OperationalBreakdown::from_series(&self.energy, &self.wue, self.spec.pue, &self.ewf)
    }

    /// Exports the hourly telemetry as a [`Frame`](thirstyflops_timeseries::Frame) (hour, utilization,
    /// energy, WUE, EWF, WI, carbon) — the dump downstream plotting
    /// pipelines consume via `Frame::to_csv`.
    pub fn hourly_frame(&self) -> thirstyflops_timeseries::Frame {
        // One WI derivation feeds the whole export.
        let wi = self.water_intensity();
        let mut frame = thirstyflops_timeseries::Frame::new();
        let hours: Vec<f64> = (0..self.energy.len()).map(|h| h as f64).collect();
        frame.push_number("hour", hours).expect("first column");
        frame
            .push_number("utilization", self.utilization.values().to_vec())
            .expect("same length");
        frame
            .push_number("energy_kwh", self.energy.values().to_vec())
            .expect("same length");
        frame
            .push_number("wue_l_per_kwh", self.wue.values().to_vec())
            .expect("same length");
        frame
            .push_number("ewf_l_per_kwh", self.ewf.values().to_vec())
            .expect("same length");
        frame
            .push_number("wi_l_per_kwh", wi.values().to_vec())
            .expect("same length");
        frame
            .push_number("carbon_g_per_kwh", self.carbon.values().to_vec())
            .expect("same length");
        frame
    }

    /// Exports monthly aggregates as a [`Frame`](thirstyflops_timeseries::Frame) (month, energy, water,
    /// mean WUE/EWF/WI/CI) — the Fig. 11/12 input table.
    pub fn monthly_frame(&self) -> thirstyflops_timeseries::Frame {
        use thirstyflops_timeseries::Month;
        // One WI derivation feeds both the water totals and the WI means
        // (this used to re-derive the series per column).
        let hourly_wi = self.water_intensity();
        let energy = self.energy.monthly_sum();
        let water = self.hourly_water_with(&hourly_wi).monthly_sum();
        let wue = self.wue.monthly_mean();
        let ewf = self.ewf.monthly_mean();
        let wi = hourly_wi.monthly_mean();
        let ci = self.carbon.monthly_mean();
        let mut frame = thirstyflops_timeseries::Frame::new();
        frame
            .push_text(
                "month",
                Month::ALL.iter().map(|m| m.name().to_string()).collect(),
            )
            .expect("first column");
        let col = |s: &thirstyflops_timeseries::MonthlySeries| -> Vec<f64> {
            Month::ALL.iter().map(|&m| s.get(m)).collect()
        };
        frame
            .push_number("energy_kwh", col(&energy))
            .expect("12 rows");
        frame.push_number("water_l", col(&water)).expect("12 rows");
        frame.push_number("mean_wue", col(&wue)).expect("12 rows");
        frame.push_number("mean_ewf", col(&ewf)).expect("12 rows");
        frame.push_number("mean_wi", col(&wi)).expect("12 rows");
        frame.push_number("mean_ci", col(&ci)).expect("12 rows");
        frame
    }
}

/// The top-level ThirstyFLOPS model for one system.
#[derive(Debug, Clone)]
pub struct FootprintModel {
    spec: SystemSpec,
}

impl FootprintModel {
    /// Model for a cataloged reference system.
    pub fn reference(id: SystemId) -> Self {
        Self {
            spec: SystemSpec::reference(id),
        }
    }

    /// Model for a custom specification.
    pub fn from_spec(spec: SystemSpec) -> Self {
        Self { spec }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Simulates a telemetry year (see [`SystemYear::simulate`]) —
    /// memoized, so repeated reports on one `(spec, seed)` share a year.
    pub fn simulate_year(&self, seed: u64) -> Arc<SystemYear> {
        SystemYear::simulate_spec(self.spec.clone(), seed)
    }

    /// Full annual report: embodied + operational + intensities +
    /// scarcity adjustment.
    pub fn annual_report(&self, seed: u64) -> AnnualReport {
        let year = self.simulate_year(seed);
        AnnualReport::from_year(&year)
    }
}

/// Everything the paper reports per system-year.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnnualReport {
    /// System identifier.
    pub id: SystemId,
    /// Embodied breakdown (one-time).
    pub embodied: EmbodiedBreakdown,
    /// Operational breakdown for the year.
    pub operational: OperationalBreakdown,
    /// Annual IT energy.
    pub energy: KilowattHours,
    /// Annual mean WUE.
    pub mean_wue: LitersPerKilowattHour,
    /// Annual mean EWF.
    pub mean_ewf: LitersPerKilowattHour,
    /// Annual mean WI.
    pub mean_wi: LitersPerKilowattHour,
    /// WSI-adjusted mean WI with split direct/indirect indices (Fig. 8c).
    pub adjusted_wi: LitersPerKilowattHour,
    /// Direct share of operational water (Fig. 7).
    pub direct_share: Fraction,
}

impl AnnualReport {
    /// Evaluates all models over a simulated year.
    pub fn from_year(year: &SystemYear) -> AnnualReport {
        let embodied = EmbodiedBreakdown::for_system(&year.spec);
        let operational = year.operational();
        let mean_wue = LitersPerKilowattHour::new(year.wue.mean());
        let mean_ewf = LitersPerKilowattHour::new(year.ewf.mean());
        let wi = WaterIntensity::new(mean_wue, year.spec.pue, mean_ewf);
        let adjustment = ScarcityAdjustment::from_fleet(year.spec.site_wsi, &year.spec.fleet);
        AnnualReport {
            id: year.spec.id,
            embodied,
            operational,
            energy: year.annual_energy(),
            mean_wue,
            mean_ewf,
            mean_wi: wi.total(),
            adjusted_wi: adjustment.adjust(wi),
            direct_share: operational.direct_share(),
        }
    }

    /// Total embodied water.
    pub fn embodied_total(&self) -> Liters {
        self.embodied.total()
    }

    /// Total operational water for the year.
    pub fn operational_total(&self) -> Liters {
        self.operational.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polaris_year_is_internally_consistent() {
        let year = SystemYear::simulate(SystemId::Polaris, 2023);
        // Utilization bounded, energy positive, intensities positive.
        assert!(year.utilization.max() <= 1.0 + 1e-12);
        assert!(year.utilization.min() >= 0.0);
        assert!(year.annual_energy().value() > 0.0);
        assert!(year.wue.min() >= 0.0);
        assert!(year.ewf.min() > 0.0);
        // WI = WUE + PUE·EWF pointwise.
        let wi = year.water_intensity();
        let h = 4321;
        let expected = year.wue.get(h) + year.spec.pue.value() * year.ewf.get(h);
        assert!((wi.get(h) - expected).abs() < 1e-12);
        // Hourly water sums to the operational total.
        let op = year.operational();
        assert!(
            (year.hourly_water().total() - op.total().value()).abs() < 1e-6 * op.total().value()
        );
    }

    #[test]
    fn reports_are_deterministic_per_seed() {
        let a = FootprintModel::reference(SystemId::Marconi).annual_report(7);
        let b = FootprintModel::reference(SystemId::Marconi).annual_report(7);
        assert_eq!(a, b);
        let c = FootprintModel::reference(SystemId::Marconi).annual_report(8);
        assert_ne!(a.energy, c.energy);
        // Embodied water is seed-independent (it's a one-time constant).
        assert_eq!(a.embodied, c.embodied);
    }

    #[test]
    fn frontier_magnitudes_match_paper_anecdotes() {
        // Frontier consumes tens of millions of gallons per year
        // (~60 gal/min ⇒ ~1.1e8 L/yr direct). Loose order-of-magnitude
        // band on the direct component.
        let report = FootprintModel::reference(SystemId::Frontier).annual_report(2023);
        let direct = report.operational.direct.value();
        assert!(
            (2e7..2e9).contains(&direct),
            "Frontier direct water {direct} L"
        );
        // Energy: tens to hundreds of GWh.
        let gwh = report.energy.value() / 1e6;
        assert!((50.0..400.0).contains(&gwh), "{gwh} GWh");
    }

    #[test]
    fn telemetry_frames_export() {
        let year = SystemYear::simulate(SystemId::Polaris, 4);
        let hourly = year.hourly_frame();
        assert_eq!(hourly.n_rows(), 8760);
        assert_eq!(hourly.n_cols(), 7);
        // WI column equals WUE + PUE·EWF pointwise.
        let wi = hourly.numbers("wi_l_per_kwh").unwrap();
        let wue = hourly.numbers("wue_l_per_kwh").unwrap();
        let ewf = hourly.numbers("ewf_l_per_kwh").unwrap();
        for h in [0usize, 100, 8759] {
            assert!((wi[h] - (wue[h] + year.spec.pue.value() * ewf[h])).abs() < 1e-9);
        }
        let monthly = year.monthly_frame();
        assert_eq!(monthly.n_rows(), 12);
        // Monthly water sums to the operational total.
        let water: f64 = monthly.numbers("water_l").unwrap().iter().sum();
        assert!((water - year.operational().total().value()).abs() < 1e-6 * water);
        // CSV round-trips structurally.
        let csv = monthly.to_csv();
        assert!(csv.starts_with("month,"));
        assert_eq!(csv.lines().count(), 13);
    }

    #[test]
    fn custom_spec_flows_through() {
        let mut spec = SystemSpec::reference(SystemId::Polaris);
        spec.nodes = 100;
        let model = FootprintModel::from_spec(spec);
        assert_eq!(model.spec().nodes, 100);
    }
}
