//! Operational water footprint: Eq. 6–7.
//!
//! `W_direct = E · WUE` (cooling water at the facility) and
//! `W_indirect = E · PUE · EWF` (water consumed generating the
//! facility's electricity). Both are pointwise in time, so hourly energy
//! and intensity series multiply elementwise and sum.

use thirstyflops_timeseries::{HourlySeries, MonthlySeries};
use thirstyflops_units::{Fraction, KilowattHours, Liters, Pue};

/// Direct/indirect operational water for a period.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OperationalBreakdown {
    /// Cooling water at the facility (Eq. 6).
    pub direct: Liters,
    /// Generation water upstream (Eq. 7).
    pub indirect: Liters,
}

impl OperationalBreakdown {
    /// Point-in-time evaluation from totals (Eq. 6 + Eq. 7 with scalar
    /// annual means).
    pub fn from_totals(
        energy: KilowattHours,
        wue: thirstyflops_units::LitersPerKilowattHour,
        pue: Pue,
        ewf: thirstyflops_units::LitersPerKilowattHour,
    ) -> Self {
        Self {
            direct: energy * wue,
            indirect: energy * pue * ewf,
        }
    }

    /// Series evaluation: hourly IT energy (kWh per hour) against hourly
    /// WUE and EWF. This is the faithful path — the paper stresses that
    /// WUE and EWF move hour by hour. The single-pass
    /// [`HourlySeries::dot`] kernel replaces the two intermediate
    /// year-long product series, bit-identically.
    pub fn from_series(
        energy: &HourlySeries,
        wue: &HourlySeries,
        pue: Pue,
        ewf: &HourlySeries,
    ) -> Self {
        let direct = energy.dot(wue);
        let indirect = energy.dot(ewf) * pue.value();
        Self {
            direct: Liters::new(direct),
            indirect: Liters::new(indirect),
        }
    }

    /// Total operational water.
    pub fn total(&self) -> Liters {
        self.direct + self.indirect
    }

    /// Direct share of the operational total (Fig. 7's pie slices).
    pub fn direct_share(&self) -> Fraction {
        let t = self.total().value();
        if t <= 0.0 {
            return Fraction::ZERO;
        }
        Fraction::clamped(self.direct.value() / t)
    }

    /// Indirect share of the operational total.
    pub fn indirect_share(&self) -> Fraction {
        self.direct_share().complement()
    }
}

/// Monthly operational water series: `(energy · (wue + pue·ewf))` summed
/// per month — the bottom panels of Fig. 11.
pub fn monthly_operational_water(
    energy: &HourlySeries,
    wue: &HourlySeries,
    pue: Pue,
    ewf: &HourlySeries,
) -> MonthlySeries {
    let hourly = energy.zip_with(&wue.add_scaled(ewf, pue.value()), |e, wi| e * wi);
    hourly.monthly_sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use thirstyflops_units::LitersPerKilowattHour;

    #[test]
    fn totals_match_eq6_eq7() {
        let b = OperationalBreakdown::from_totals(
            KilowattHours::new(1000.0),
            LitersPerKilowattHour::new(3.0),
            Pue::new(1.5).unwrap(),
            LitersPerKilowattHour::new(2.0),
        );
        assert_eq!(b.direct, Liters::new(3000.0));
        assert_eq!(b.indirect, Liters::new(3000.0));
        assert_eq!(b.total(), Liters::new(6000.0));
        assert!((b.direct_share().value() - 0.5).abs() < 1e-12);
        assert!((b.indirect_share().value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn series_and_scalar_agree_for_constant_inputs() {
        let energy = HourlySeries::constant(10.0);
        let wue = HourlySeries::constant(2.5);
        let ewf = HourlySeries::constant(1.2);
        let pue = Pue::new(1.25).unwrap();
        let series = OperationalBreakdown::from_series(&energy, &wue, pue, &ewf);
        let scalar = OperationalBreakdown::from_totals(
            KilowattHours::new(energy.total()),
            LitersPerKilowattHour::new(2.5),
            pue,
            LitersPerKilowattHour::new(1.2),
        );
        assert!((series.direct.value() - scalar.direct.value()).abs() < 1e-6);
        assert!((series.indirect.value() - scalar.indirect.value()).abs() < 1e-4);
    }

    #[test]
    fn covariance_matters_for_varying_series() {
        // Energy concentrated in high-WUE hours must cost more water than
        // the means-product suggests — the reason the paper insists on
        // hourly accounting.
        let energy = HourlySeries::from_fn(|h| if h % 2 == 0 { 2.0 } else { 0.0 });
        let wue = HourlySeries::from_fn(|h| if h % 2 == 0 { 4.0 } else { 0.0 });
        let ewf = HourlySeries::constant(0.0);
        let pue = Pue::new(1.0).unwrap();
        let b = OperationalBreakdown::from_series(&energy, &wue, pue, &ewf);
        let naive = energy.total() * wue.mean();
        assert!(b.direct.value() > naive * 1.5);
    }

    #[test]
    fn monthly_series_sums_to_annual_total() {
        let energy = HourlySeries::from_fn(|h| 1.0 + (h % 5) as f64);
        let wue = HourlySeries::from_fn(|h| 0.5 + (h % 3) as f64 * 0.3);
        let ewf = HourlySeries::constant(1.1);
        let pue = Pue::new(1.4).unwrap();
        let monthly = monthly_operational_water(&energy, &wue, pue, &ewf);
        let b = OperationalBreakdown::from_series(&energy, &wue, pue, &ewf);
        assert!((monthly.total() - b.total().value()).abs() < 1e-6 * b.total().value());
    }

    #[test]
    fn zero_energy_zero_water() {
        let zero = HourlySeries::constant(0.0);
        let wue = HourlySeries::constant(3.0);
        let ewf = HourlySeries::constant(2.0);
        let b = OperationalBreakdown::from_series(&zero, &wue, Pue::new(1.2).unwrap(), &ewf);
        assert_eq!(b.total(), Liters::ZERO);
        assert_eq!(b.direct_share(), Fraction::ZERO);
    }
}
