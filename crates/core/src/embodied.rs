//! Embodied water footprint: Eq. 2–5.
//!
//! `W_embodied = W_pkg + W_mfg` where packaging is `Σ W_IC · N_IC`
//! (Eq. 3), processor manufacturing is `A_die/Yield · (UPW + PCW + WPA)`
//! (Eq. 4), and memory/storage is `WPC · Capacity` (Eq. 5).

use thirstyflops_catalog::hardware::{self, Medium, ProcessorSpec};
use thirstyflops_catalog::SystemSpec;
use thirstyflops_units::{Fraction, Gigabytes, Liters, Petabytes, SquareCentimeters};

/// Per-component embodied water for a whole system.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EmbodiedBreakdown {
    /// All CPU packages (Eq. 4).
    pub cpu: Liters,
    /// All GPU packages (Eq. 4); zero for CPU-only systems.
    pub gpu: Liters,
    /// All DRAM/HBM (Eq. 5).
    pub dram: Liters,
    /// HDD storage tier (Eq. 5).
    pub hdd: Liters,
    /// SSD/flash storage tier (Eq. 5).
    pub ssd: Liters,
    /// IC packaging overhead (Eq. 3).
    pub packaging: Liters,
}

/// Eq. 4 for a single processor package.
///
/// ```
/// use thirstyflops_catalog::hardware::{FabSite, ProcessorSpec};
/// use thirstyflops_core::embodied::processor_water;
///
/// // NVIDIA A100: 826 mm² at TSMC 7 nm, default 0.875 yield.
/// let a100 = ProcessorSpec::new("A100", 826.0, 7, FabSite::TsmcTaiwan, 250.0);
/// let water = processor_water(&a100);
/// // A_die/Yield × (UPW + PCW + WPA) ≈ 9.44 cm² × 28.5 L/cm² ≈ 269 L.
/// assert!((water.value() - 269.1).abs() < 1.0);
/// ```
pub fn processor_water(spec: &ProcessorSpec) -> Liters {
    let area: SquareCentimeters = spec.die.into();
    let effective_area = area * spec.yield_rate.inflation();
    spec.water_per_cm2() * effective_area
}

/// Eq. 5 for a capacity on a medium.
pub fn capacity_water(medium: Medium, capacity: Gigabytes) -> Liters {
    hardware::wpc(medium) * capacity
}

impl EmbodiedBreakdown {
    /// Computes the full breakdown for a cataloged system (Eq. 2–5).
    pub fn for_system(spec: &SystemSpec) -> Self {
        let nodes = spec.nodes as f64;
        let cpu = processor_water(&spec.node.cpu) * (spec.node.cpus_per_node as f64) * nodes;
        let gpu = spec.node.gpu.as_ref().map_or(Liters::ZERO, |g| {
            processor_water(g) * (spec.node.gpus_per_node as f64) * nodes
        });
        let dram = capacity_water(Medium::Dram, Gigabytes::new(spec.node.dram_gb * nodes));
        let hdd = capacity_water(Medium::Hdd, Petabytes::new(spec.storage.hdd_pb).into());
        let ssd = capacity_water(Medium::Ssd, Petabytes::new(spec.storage.ssd_pb).into());
        let packaging = Liters::new(hardware::W_IC_LITERS * spec.node.ics_per_node as f64 * nodes);
        Self {
            cpu,
            gpu,
            dram,
            hdd,
            ssd,
            packaging,
        }
    }

    /// Total embodied water (Eq. 2).
    pub fn total(&self) -> Liters {
        self.cpu + self.gpu + self.dram + self.hdd + self.ssd + self.packaging
    }

    /// Processor share of the total (CPU + GPU, packaging excluded).
    pub fn processors(&self) -> Liters {
        self.cpu + self.gpu
    }

    /// Memory + storage share of the total.
    pub fn memory_and_storage(&self) -> Liters {
        self.dram + self.hdd + self.ssd
    }

    /// Fig. 3's five-component shares `(cpu, gpu, dram, hdd, ssd)` as
    /// fractions of their own sum (packaging excluded, as in the figure).
    pub fn five_component_shares(&self) -> [(&'static str, Fraction); 5] {
        let five = self.processors() + self.memory_and_storage();
        let denom = five.value().max(f64::MIN_POSITIVE);
        let f = |v: Liters| Fraction::clamped(v.value() / denom);
        [
            ("CPU", f(self.cpu)),
            ("GPU", f(self.gpu)),
            ("DRAM", f(self.dram)),
            ("HDD", f(self.hdd)),
            ("SSD", f(self.ssd)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thirstyflops_catalog::hardware::FabSite;
    use thirstyflops_catalog::SystemId;
    use thirstyflops_units::FabYield;

    #[test]
    fn eq4_matches_hand_computation() {
        let mut spec = ProcessorSpec::new("A100", 826.0, 7, FabSite::TsmcTaiwan, 250.0);
        spec.yield_rate = FabYield::new(0.875).unwrap();
        let w = processor_water(&spec).value();
        // (8.26 cm² / 0.875) × 28.505 L/cm².
        let expected = 8.26 / 0.875 * 28.505;
        assert!((w - expected).abs() < 0.01, "got {w}, want {expected}");
    }

    #[test]
    fn lower_yield_costs_more_water() {
        let mut a = ProcessorSpec::new("X", 800.0, 7, FabSite::TsmcTaiwan, 100.0);
        a.yield_rate = FabYield::new(0.9).unwrap();
        let mut b = a.clone();
        b.yield_rate = FabYield::new(0.5).unwrap();
        assert!(processor_water(&b).value() > processor_water(&a).value());
    }

    #[test]
    fn eq5_frontier_hdd_tier() {
        // 679 PB × 0.033 L/GB ≈ 22.4 ML — the paper's headline HDD figure.
        let w = capacity_water(Medium::Hdd, Petabytes::new(679.0).into());
        assert!((w.value() - 22.407e6).abs() < 1e3);
    }

    #[test]
    fn fig3_polaris_gpu_dominant() {
        let b = EmbodiedBreakdown::for_system(&SystemSpec::reference(SystemId::Polaris));
        let shares = b.five_component_shares();
        let gpu_share = shares[1].1.value();
        assert!(gpu_share > 0.5, "Polaris GPU share {gpu_share}");
        // GPU is the single largest component.
        for (name, s) in shares {
            if name != "GPU" {
                assert!(gpu_share > s.value(), "{name}");
            }
        }
    }

    #[test]
    fn fig3_frontier_storage_and_memory_exceed_processors() {
        // Paper: Frontier's storage+memory embodied water is 24.8 pp above
        // its processors', thanks to the 679 PB HDD file system.
        let b = EmbodiedBreakdown::for_system(&SystemSpec::reference(SystemId::Frontier));
        assert!(
            b.memory_and_storage().value() > b.processors().value(),
            "mem+storage {} vs processors {}",
            b.memory_and_storage(),
            b.processors()
        );
        // HDD is the dominant single storage component.
        assert!(b.hdd.value() > b.ssd.value() * 10.0);
    }

    #[test]
    fn fig3_fugaku_memory_storage_share_near_27_percent() {
        let b = EmbodiedBreakdown::for_system(&SystemSpec::reference(SystemId::Fugaku));
        let five = b.processors() + b.memory_and_storage();
        let share = b.memory_and_storage().value() / five.value();
        assert!((0.18..0.40).contains(&share), "Fugaku mem+storage {share}");
        // No GPU water at all.
        assert_eq!(b.gpu, Liters::ZERO);
    }

    #[test]
    fn all_flash_polaris_has_no_hdd_water() {
        let b = EmbodiedBreakdown::for_system(&SystemSpec::reference(SystemId::Polaris));
        assert_eq!(b.hdd, Liters::ZERO);
        assert!(b.ssd.value() > 0.0);
    }

    #[test]
    fn shares_sum_to_one_and_total_adds_packaging() {
        for id in SystemId::ALL {
            let b = EmbodiedBreakdown::for_system(&SystemSpec::reference(id));
            let sum: f64 = b
                .five_component_shares()
                .iter()
                .map(|(_, f)| f.value())
                .sum();
            assert!((sum - 1.0).abs() < 1e-9, "{id}");
            assert!(b.total().value() >= (b.processors() + b.memory_and_storage()).value());
            assert!(b.packaging.value() > 0.0);
        }
    }

    #[test]
    fn takeaway1_same_capacity_ssd_beats_hdd_on_water() {
        let cap: Gigabytes = Petabytes::new(100.0).into();
        let ssd = capacity_water(Medium::Ssd, cap);
        let hdd = capacity_water(Medium::Hdd, cap);
        assert!(ssd.value() < hdd.value());
    }
}
