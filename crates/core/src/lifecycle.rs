//! Lifecycle analysis: amortizing the one-time embodied water over a
//! service life and comparing systems across upgrade cycles.
//!
//! §6: "this component is critical for accurate comparison across
//! different HPC systems with various hardware types and upgrade cycles".
//! The lifecycle view answers the questions Fig. 4 only gestures at:
//! after how many years does operation dominate manufacturing? What does
//! a mid-life accelerator upgrade do to the total?

use thirstyflops_catalog::SystemSpec;
use thirstyflops_units::{KilowattHours, Liters, LitersPerKilowattHour};

use crate::embodied::{processor_water, EmbodiedBreakdown};
use crate::simulate::AnnualReport;

/// Water accounting over a system's whole service life.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LifecycleReport {
    /// Service life in years.
    pub lifetime_years: f64,
    /// One-time embodied water (initial build).
    pub embodied: Liters,
    /// Additional embodied water from mid-life upgrades.
    pub upgrade_embodied: Liters,
    /// Operational water over the whole life.
    pub operational: Liters,
    /// Total energy over the whole life.
    pub energy: KilowattHours,
}

impl LifecycleReport {
    /// Total water over the service life (Eq. 1 integrated).
    pub fn total(&self) -> Liters {
        self.embodied + self.upgrade_embodied + self.operational
    }

    /// Embodied (incl. upgrades) share of lifetime water.
    pub fn embodied_share(&self) -> f64 {
        (self.embodied + self.upgrade_embodied).value() / self.total().value()
    }

    /// Lifetime-amortized water intensity: total water per kWh served —
    /// the honest per-kWh price including manufacturing.
    pub fn amortized_intensity(&self) -> LitersPerKilowattHour {
        LitersPerKilowattHour::new(self.total().value() / self.energy.value())
    }
}

/// Builds lifecycle views from one representative annual report.
#[derive(Debug, Clone)]
pub struct LifecycleModel {
    annual: AnnualReport,
}

impl LifecycleModel {
    /// Wraps a representative annual report (the year is assumed typical;
    /// multi-year telemetry can average reports before wrapping).
    pub fn new(annual: AnnualReport) -> Self {
        Self { annual }
    }

    /// The underlying annual report.
    pub fn annual(&self) -> &AnnualReport {
        &self.annual
    }

    /// Years of operation after which cumulative operational water
    /// exceeds the embodied investment.
    pub fn break_even_years(&self) -> f64 {
        self.annual.embodied_total().value() / self.annual.operational_total().value()
    }

    /// Projects the lifecycle over `lifetime_years` with no upgrades.
    pub fn project(&self, lifetime_years: f64) -> Result<LifecycleReport, String> {
        self.project_with_upgrade(lifetime_years, Liters::ZERO)
    }

    /// Projects with a mid-life upgrade that adds `upgrade_embodied`
    /// water (e.g. a GPU-generation swap).
    pub fn project_with_upgrade(
        &self,
        lifetime_years: f64,
        upgrade_embodied: Liters,
    ) -> Result<LifecycleReport, String> {
        if lifetime_years <= 0.0 || !lifetime_years.is_finite() {
            return Err(format!("lifetime must be positive: {lifetime_years}"));
        }
        if upgrade_embodied.value() < 0.0 {
            return Err("upgrade embodied water must be non-negative".into());
        }
        Ok(LifecycleReport {
            lifetime_years,
            embodied: self.annual.embodied_total(),
            upgrade_embodied,
            operational: self.annual.operational_total() * lifetime_years,
            energy: self.annual.energy * lifetime_years,
        })
    }
}

/// Embodied water of swapping every GPU in a system for `new_gpu`-style
/// packages (the accelerator-upgrade scenario). The retired parts'
/// footprint is sunk; only the new silicon adds water.
pub fn gpu_upgrade_water(
    spec: &SystemSpec,
    new_gpu: &thirstyflops_catalog::ProcessorSpec,
) -> Liters {
    processor_water(new_gpu) * (spec.node.gpus_per_node as f64) * (spec.nodes as f64)
}

/// Convenience: the full embodied breakdown re-used by lifecycle callers.
pub fn initial_embodied(spec: &SystemSpec) -> EmbodiedBreakdown {
    EmbodiedBreakdown::for_system(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::FootprintModel;
    use thirstyflops_catalog::hardware::FabSite;
    use thirstyflops_catalog::{ProcessorSpec, SystemId};

    fn model() -> LifecycleModel {
        LifecycleModel::new(FootprintModel::reference(SystemId::Polaris).annual_report(3))
    }

    #[test]
    fn break_even_is_fractional_years_for_paper_systems() {
        // Operational water dominates embodied within the first year for
        // all four paper systems (embodied is a few % of annual
        // operational at these intensities).
        for id in SystemId::PAPER {
            let m = LifecycleModel::new(FootprintModel::reference(id).annual_report(3));
            let be = m.break_even_years();
            assert!(be > 0.0 && be < 1.0, "{id}: break-even {be} years");
        }
    }

    #[test]
    fn projection_identities() {
        let m = model();
        let r = m.project(5.0).unwrap();
        assert!(
            (r.operational.value() - 5.0 * m.annual().operational_total().value()).abs()
                < 1e-6 * r.operational.value()
        );
        assert_eq!(r.upgrade_embodied, Liters::ZERO);
        assert!((r.total() - (r.embodied + r.operational)).value().abs() < 1e-9);
        // Amortized intensity exceeds the operational-only intensity.
        let op_only = m.annual().operational_total().value() / m.annual().energy.value();
        assert!(r.amortized_intensity().value() > op_only);
    }

    #[test]
    fn longer_life_dilutes_embodied_share() {
        let m = model();
        let short = m.project(2.0).unwrap();
        let long = m.project(8.0).unwrap();
        assert!(short.embodied_share() > long.embodied_share());
        // Amortized intensity approaches the operational intensity.
        assert!(long.amortized_intensity().value() < short.amortized_intensity().value());
    }

    #[test]
    fn upgrades_add_water() {
        let m = model();
        let spec = FootprintModel::reference(SystemId::Polaris).spec().clone();
        let h100ish =
            ProcessorSpec::with_yield("Next-gen GPU", 814.0, 4, FabSite::TsmcTaiwan, 350.0, 0.7);
        let upgrade = gpu_upgrade_water(&spec, &h100ish);
        assert!(upgrade.value() > 1e5, "upgrade water {upgrade}");
        let with = m.project_with_upgrade(5.0, upgrade).unwrap();
        let without = m.project(5.0).unwrap();
        assert!(with.total().value() > without.total().value());
        assert!(with.embodied_share() > without.embodied_share());
    }

    #[test]
    fn validation() {
        let m = model();
        assert!(m.project(0.0).is_err());
        assert!(m.project(-3.0).is_err());
        assert!(m.project(f64::INFINITY).is_err());
        assert!(m.project_with_upgrade(5.0, Liters::new(-1.0)).is_err());
    }
}
