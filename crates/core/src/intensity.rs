//! Water intensity: Eq. 8.
//!
//! `WI = WUE + PUE·EWF` factors the operational water footprint as
//! `W_operational = E · WI`, making WI the water analogue of carbon
//! intensity: a per-kWh price of water that varies by hour and by region.

use thirstyflops_timeseries::{HourlySeries, MonthlySeries};
use thirstyflops_units::{LitersPerKilowattHour, Pue};

/// A water-intensity decomposition at one instant (or as period means).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WaterIntensity {
    /// Direct component: WUE.
    pub direct: LitersPerKilowattHour,
    /// Indirect component: PUE·EWF.
    pub indirect: LitersPerKilowattHour,
}

impl WaterIntensity {
    /// Builds from WUE, PUE and EWF (Eq. 8).
    pub fn new(wue: LitersPerKilowattHour, pue: Pue, ewf: LitersPerKilowattHour) -> Self {
        Self {
            direct: wue,
            indirect: pue * ewf,
        }
    }

    /// Total water intensity `WI = WUE + PUE·EWF`.
    pub fn total(&self) -> LitersPerKilowattHour {
        self.direct + self.indirect
    }
}

/// Hourly WI series from hourly WUE/EWF and a facility PUE. Uses the
/// fused [`HourlySeries::add_scaled`] kernel — one pass, one allocation,
/// bit-identical to `wue.add(&ewf.scale(pue))`.
pub fn hourly_water_intensity(wue: &HourlySeries, pue: Pue, ewf: &HourlySeries) -> HourlySeries {
    wue.add_scaled(ewf, pue.value())
}

/// Hourly indirect WI (`PUE·EWF`) alone — Fig. 12's middle column.
pub fn hourly_indirect_intensity(pue: Pue, ewf: &HourlySeries) -> HourlySeries {
    ewf.scale(pue.value())
}

/// Monthly mean WI — the Fig. 12 left column.
pub fn monthly_water_intensity(wue: &HourlySeries, pue: Pue, ewf: &HourlySeries) -> MonthlySeries {
    hourly_water_intensity(wue, pue, ewf).monthly_mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq8_identity() {
        let wi = WaterIntensity::new(
            LitersPerKilowattHour::new(3.0),
            Pue::new(1.5).unwrap(),
            LitersPerKilowattHour::new(2.0),
        );
        assert_eq!(wi.direct, LitersPerKilowattHour::new(3.0));
        assert_eq!(wi.indirect, LitersPerKilowattHour::new(3.0));
        assert_eq!(wi.total(), LitersPerKilowattHour::new(6.0));
    }

    #[test]
    fn hourly_series_matches_pointwise_formula() {
        let wue = HourlySeries::from_fn(|h| (h % 4) as f64);
        let ewf = HourlySeries::from_fn(|h| (h % 3) as f64 * 0.5);
        let pue = Pue::new(1.2).unwrap();
        let wi = hourly_water_intensity(&wue, pue, &ewf);
        for h in [0usize, 1, 2, 5, 100, 8759] {
            let expected = wue.get(h) + 1.2 * ewf.get(h);
            assert!((wi.get(h) - expected).abs() < 1e-12, "hour {h}");
        }
        let ind = hourly_indirect_intensity(pue, &ewf);
        assert!((ind.get(7) - 1.2 * ewf.get(7)).abs() < 1e-12);
    }

    #[test]
    fn pue_one_means_wi_is_wue_plus_ewf() {
        let wue = HourlySeries::constant(2.0);
        let ewf = HourlySeries::constant(1.5);
        let wi = hourly_water_intensity(&wue, Pue::new(1.0).unwrap(), &ewf);
        assert_eq!(wi.get(0), 3.5);
    }

    #[test]
    fn monthly_mean_of_constant_is_constant() {
        let wue = HourlySeries::constant(2.0);
        let ewf = HourlySeries::constant(1.0);
        let m = monthly_water_intensity(&wue, Pue::new(1.5).unwrap(), &ewf);
        for month in thirstyflops_timeseries::Month::ALL {
            assert!((m.get(month) - 3.5).abs() < 1e-12);
        }
    }
}
