//! Batched K-lane evaluation: score K system configurations in one pass
//! over the hour axis instead of K scalar walks.
//!
//! The scalar scenario path simulates a [`SystemYear`] per configuration
//! and reduces it with the fused `timeseries` kernels. A sweep of 10⁵
//! cells repeats those reductions cell by cell. This module recasts the
//! loop as matrix-shaped batch computation: K lanes of hourly series are
//! packed into hour-major [`LaneBuffer`]s and every annual reduction the
//! scenario engine needs (`Σe`, `Σe·w`, `Σe·f`, `Σe·c`, means, monthly
//! sums) runs once per batch via the K-lane kernels
//! ([`thirstyflops_timeseries::lanes`]).
//!
//! **Bit-identity contract.** The batch path is *invisible*: per lane it
//! performs the exact operation sequence of the scalar reference —
//! the per-lane ChaCha12 workload stream comes from the same
//! `workload_series` helper the scalar path uses (identical seeding:
//! `seed ^ id·φ64`), packed scales materialize `v·k` exactly like
//! [`HourlySeries::scale`], and every reduction folds hours in ascending
//! order like the scalar kernels. `tests/batch.rs` proves the batched
//! results bit-identical to the [`SystemYear::simulate_uncached`] oracle
//! on proptest-random spec batches, across thread counts, cached or not.
//!
//! The scalar path stays available as the reference oracle: disable
//! batching with `--no-batch` or `THIRSTYFLOPS_NO_BATCH=1` (mirrors the
//! `--no-sim-cache` escape hatch).

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use thirstyflops_obs::span;
use thirstyflops_obs::Counter;

use thirstyflops_catalog::SystemSpec;
use thirstyflops_grid::{GridRegion, GridYear, RegionId};
use thirstyflops_timeseries::lanes::{self, LaneBuffer};
use thirstyflops_timeseries::{DistributionSummary, HourlySeries, MONTHS_PER_YEAR};
use thirstyflops_units::Liters;
use thirstyflops_weather::ClimatePreset;

use crate::operational::OperationalBreakdown;
use crate::simcache::{self, MemoCache};
use crate::simulate::SystemYear;

/// Lanes evaluated per kernel pass. Bounds the packed working set
/// (5 buffers × 32 lanes × 8760 h ≈ 11 MB) — lanes are independent, so
/// splitting a batch across passes cannot change any lane's bits.
const LANES_PER_PASS: usize = 32;

// ------------------------------------------------------------- enabling

fn disabled_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let raw = std::env::var("THIRSTYFLOPS_NO_BATCH").unwrap_or_default();
        AtomicBool::new(matches!(raw.as_str(), "1" | "true" | "yes"))
    })
}

/// Whether the batched kernel is enabled (default yes; `--no-batch` /
/// `THIRSTYFLOPS_NO_BATCH=1` routes sweeps through the scalar oracle).
pub fn enabled() -> bool {
    !disabled_flag().load(Ordering::Relaxed)
}

/// Enables or disables the batch path process-wide (the CLI's
/// `--no-batch` hook; overrides the environment variable).
pub fn set_enabled(on: bool) {
    disabled_flag().store(!on, Ordering::Relaxed);
}

// ------------------------------------------------------------- counters
//
// All three live in the workspace metrics registry (exposed both here
// via [`stats`] and in Prometheus form at `GET /v1/metrics`). Their
// values are deterministic: lanes/passes are pure functions of the
// sweep expansion (each sweep chunk dedups and aggregates its own rows,
// see `scenario::batch`), and top-N pushes count offered rows.

fn lanes_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        thirstyflops_obs::registry::gauge(
            "thirstyflops_batch_enabled",
            "1 while the batched K-lane kernel is active, 0 under --no-batch.",
            || {
                if enabled() {
                    1.0
                } else {
                    0.0
                }
            },
        );
        thirstyflops_obs::registry::counter(
            "thirstyflops_batch_lanes_total",
            "Lanes aggregated by the K-lane kernel.",
        )
    })
}

fn passes_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        thirstyflops_obs::registry::counter(
            "thirstyflops_batch_kernel_passes_total",
            "Fused K-lane kernel passes executed.",
        )
    })
}

fn topn_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        thirstyflops_obs::registry::counter(
            "thirstyflops_batch_topn_pushes_total",
            "Rows offered to streaming top-N aggregators.",
        )
    })
}

fn lane_width_hist() -> &'static std::sync::Arc<thirstyflops_obs::LatencyHistogram> {
    static H: OnceLock<std::sync::Arc<thirstyflops_obs::LatencyHistogram>> = OnceLock::new();
    H.get_or_init(|| {
        thirstyflops_obs::registry::histogram(
            "thirstyflops_batch_lane_width",
            "Lanes per fused kernel pass (log2 buckets).",
        )
    })
}

/// Process-wide batch counters, served in the `batch` section of
/// `GET /v1/cache/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BatchStats {
    /// False when `--no-batch` / `THIRSTYFLOPS_NO_BATCH` routed sweeps
    /// through the scalar reference path.
    pub enabled: bool,
    /// Lanes aggregated by the K-lane kernel since process start.
    pub lanes: u64,
    /// Kernel passes (lane chunks) executed.
    pub chunks: u64,
    /// Rows offered to streaming top-N aggregators.
    pub topn_rows: u64,
}

/// Current counters.
pub fn stats() -> BatchStats {
    BatchStats {
        enabled: enabled(),
        lanes: lanes_counter().get(),
        chunks: passes_counter().get(),
        topn_rows: topn_counter().get(),
    }
}

// ------------------------------------------------------------ the kernel

/// One lane of a batch: a system configuration plus the series
/// reinterpretation scales the scenario engine applies post-simulation.
/// `None` means "use the raw series" — identity is decided by the
/// *presence* of a scale, mirroring the scalar override branches.
#[derive(Debug, Clone)]
pub struct LaneRequest {
    /// The (already transformed) system specification.
    pub spec: SystemSpec,
    /// Telemetry seed.
    pub seed: u64,
    /// WUE multiplier (`climate.wue_scale` override).
    pub wue_scale: Option<f64>,
    /// EWF multiplier (grid `mix` / `mix_delta` factor).
    pub ewf_scale: Option<f64>,
    /// Carbon-intensity multiplier (grid `mix` / `mix_delta` factor).
    pub carbon_scale: Option<f64>,
}

/// Every annual reduction the scenario engine derives from one lane's
/// hourly series, computed by the K-lane kernels. The remaining metric
/// arithmetic (PUE application, scarcity weights, pricing, lifecycle)
/// is cheap scalar post-processing on these.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneAggregates {
    /// `Σ energy` — annual IT energy, kWh.
    pub energy_kwh: f64,
    /// `Σ energy·wue'` — annual direct water, liters.
    pub direct_l: f64,
    /// `Σ energy·ewf'` — annual indirect water *before* the PUE factor
    /// (the scalar path multiplies the dot by `pue` afterwards).
    pub indirect_per_pue_l: f64,
    /// `Σ energy·carbon'` — annual operational carbon, grams.
    pub carbon_g: f64,
    /// Annual mean of the (scaled) WUE series, L/kWh.
    pub mean_wue: f64,
    /// Annual mean of the (scaled) EWF series, L/kWh.
    pub mean_ewf: f64,
    /// Annual mean of the (scaled) carbon series, gCO₂/kWh.
    pub mean_carbon: f64,
    /// Monthly `Σ energy·wue'` (January first), liters.
    pub monthly_direct_l: [f64; MONTHS_PER_YEAR],
}

/// The memo key for one lane's seed-dependent workload simulation: the
/// spec fields the jobs → utilization → energy path actually reads
/// (identity, node count, target utilization, per-node hardware) plus
/// the seed. Region/climate/PUE/WSI lanes share one energy series.
pub fn energy_key(spec: &SystemSpec, seed: u64) -> String {
    format!(
        "{}|{}|{:016x}|{}|{seed}",
        spec.id.slug(),
        spec.nodes,
        spec.mean_utilization.to_bits(),
        serde_json::to_string(&spec.node).expect("node configs serialize"),
    )
}

/// The process-wide workload-series cache behind [`BatchContext`]: keyed
/// by [`energy_key`], so repeated sweeps (the server's
/// `POST /v1/scenarios/sweep` burst shape) stop repaying the ChaCha12
/// workload simulation once it is warm. LRU-bounded like the simcache
/// layers; an evicted entry recomputes to identical bytes.
fn global_energy() -> &'static MemoCache<String, (HourlySeries, HourlySeries)> {
    static CACHE: OnceLock<MemoCache<String, (HourlySeries, HourlySeries)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let (hits, misses, evictions) = simcache::layer_counters("batch_energy");
        MemoCache::new(8, 256).with_counters(hits, misses, evictions)
    })
}

/// Shared sub-simulation resolution for a batch evaluation: single-flight
/// caches for the seed-dependent workload series plus the seed-independent
/// grid / climate layers. When the process-wide [`crate::simcache`] is
/// enabled all three layers are global (so sweeps keep warming the
/// server's caches across requests); when it is disabled the context
/// falls back to its own local layers — the sub-simulators are
/// deterministic, so the values are byte-identical either way.
#[derive(Debug)]
pub struct BatchContext {
    energy: MemoCache<String, (HourlySeries, HourlySeries)>,
    wue_local: MemoCache<ClimatePreset, HourlySeries>,
    grid_local: MemoCache<RegionId, GridYear>,
}

impl Default for BatchContext {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchContext {
    /// A fresh context. The energy layer is LRU-bounded (a huge `nodes`
    /// axis would otherwise pin one year-long series pair per value);
    /// an evicted entry recomputes to identical bytes.
    pub fn new() -> Self {
        BatchContext {
            energy: MemoCache::new(8, 256),
            wue_local: MemoCache::new(4, 0),
            grid_local: MemoCache::new(4, 0),
        }
    }

    /// The (utilization, energy) pair for one lane, memoized by
    /// [`energy_key`] (globally when the simcache is enabled, per
    /// context otherwise). Single source of truth: the same
    /// `workload_series` helper the scalar path calls.
    pub fn energy_of(&self, spec: &SystemSpec, seed: u64) -> Arc<(HourlySeries, HourlySeries)> {
        // Demand-level span: counts energy-series *requests*, which are
        // identical whichever cache layer (global or local) serves them.
        let _span = span::span(span::CACHE_LOOKUP);
        let cache = if simcache::enabled() {
            global_energy()
        } else {
            &self.energy
        };
        cache.get_or_compute(energy_key(spec, seed), || {
            crate::simulate::workload_series(spec, seed)
        })
    }

    /// The climate → WUE series (global simcache layer when enabled).
    pub fn wue_of(&self, climate: ClimatePreset) -> Arc<HourlySeries> {
        if simcache::enabled() {
            simcache::wue_series(climate)
        } else {
            self.wue_local.get_or_compute(climate, || {
                let generated = climate.generate();
                climate.wue_model().hourly_series(&generated)
            })
        }
    }

    /// The region's grid year (global simcache layer when enabled).
    pub fn grid_of(&self, region: RegionId) -> Arc<GridYear> {
        if simcache::enabled() {
            simcache::grid_year(region)
        } else {
            self.grid_local
                .get_or_compute(region, || GridRegion::preset(region).simulate_year())
        }
    }

    /// Annual means of the region's *unscaled* EWF and carbon series —
    /// what the scalar path reads as `year.ewf.mean()` /
    /// `year.carbon.mean()` when pinning a grid-mix override.
    pub fn region_means(&self, region: RegionId) -> (f64, f64) {
        let grid = self.grid_of(region);
        (grid.ewf().mean(), grid.carbon().mean())
    }

    /// Evaluates a batch of lanes: packs the (scaled) hourly series into
    /// hour-major lane buffers and runs every annual reduction once per
    /// `LANES_PER_PASS`-lane pass. Per lane the result is bit-identical
    /// to the scalar expressions over [`SystemYear::simulate_uncached`]
    /// telemetry (`tests/batch.rs`).
    pub fn aggregate(&self, requests: &[LaneRequest]) -> Vec<LaneAggregates> {
        let mut out = Vec::with_capacity(requests.len());
        for block in requests.chunks(LANES_PER_PASS) {
            self.aggregate_block(block, &mut out);
        }
        out
    }

    fn aggregate_block(&self, block: &[LaneRequest], out: &mut Vec<LaneAggregates>) {
        if block.is_empty() {
            return;
        }
        let k = block.len();
        // Resolve shared sub-simulations. Lanes overwhelmingly alias a
        // handful of unique series (energy per workload key, WUE per
        // climate, EWF/carbon per region), so the zero-copy fused kernel
        // reads the shared slices in place — the working set stays at
        // the unique-series size instead of K copies of it.
        let resolved: Vec<_> = block
            .iter()
            .map(|req| {
                (
                    self.energy_of(&req.spec, req.seed),
                    self.wue_of(req.spec.climate),
                    self.grid_of(req.spec.region),
                )
            })
            .collect();
        let sources: Vec<lanes::LaneSource<'_>> = resolved
            .iter()
            .zip(block)
            .map(|((energy, wue, grid), req)| lanes::LaneSource {
                energy: energy.1.values(),
                wue: wue.values(),
                ewf: grid.ewf().values(),
                carbon: grid.carbon().values(),
                wue_scale: req.wue_scale,
                ewf_scale: req.ewf_scale,
                carbon_scale: req.carbon_scale,
            })
            .collect();
        // Every annual reduction in one fused pass over the hour axis —
        // bit-identical to pack-then-reduce with the single-purpose
        // K-lane kernels (see `annual_reductions_scaled`).
        let red = {
            let _span = span::span(span::FUSED_REDUCTION);
            lanes::annual_reductions_scaled(&sources)
        };
        lanes_counter().add(k as u64);
        passes_counter().inc();
        lane_width_hist().record(k as u64);
        for l in 0..k {
            let mut monthly_direct_l = [0.0; MONTHS_PER_YEAR];
            monthly_direct_l.copy_from_slice(
                &red.monthly_direct[l * MONTHS_PER_YEAR..(l + 1) * MONTHS_PER_YEAR],
            );
            out.push(LaneAggregates {
                energy_kwh: red.energy_total[l],
                direct_l: red.direct[l],
                indirect_per_pue_l: red.indirect[l],
                carbon_g: red.carbon[l],
                mean_wue: red.wue_mean[l],
                mean_ewf: red.ewf_mean[l],
                mean_carbon: red.carbon_mean[l],
                monthly_direct_l,
            });
        }
    }

    /// Simulates K `(spec, seed)` pairs sharing sub-simulations within
    /// the batch. Per lane the returned year is bit-identical to
    /// [`SystemYear::simulate_uncached`] — the differential suite's
    /// direct comparison target.
    pub fn simulate_batch(&self, requests: &[(SystemSpec, u64)]) -> Vec<SystemYear> {
        requests
            .iter()
            .map(|(spec, seed)| {
                let workload = self.energy_of(spec, *seed);
                let wue = self.wue_of(spec.climate);
                let grid = self.grid_of(spec.region);
                SystemYear {
                    spec: spec.clone(),
                    utilization: workload.0.clone(),
                    energy: workload.1.clone(),
                    wue: (*wue).clone(),
                    ewf: grid.ewf().clone(),
                    carbon: grid.carbon().clone(),
                }
            })
            .collect()
    }
}

// ------------------------------------------------- experiment lane stats

/// Per-lane derived statistics over a batch of simulated years — the
/// fig06/07/08 inputs in one batched call instead of three per-system
/// loops. Lane order matches the input order.
#[derive(Debug, Clone)]
pub struct YearLaneStats {
    /// Eq. 6/7 operational breakdown per lane (fig07).
    pub operational: Vec<OperationalBreakdown>,
    /// Annual mean `WI = WUE + PUE·EWF` per lane (fig08).
    pub wi_mean: Vec<f64>,
    /// Annual mean WUE per lane.
    pub wue_mean: Vec<f64>,
    /// Annual mean EWF per lane.
    pub ewf_mean: Vec<f64>,
    /// WUE distribution summary per lane (fig06 box plots).
    pub wue_summary: Vec<DistributionSummary>,
    /// EWF distribution summary per lane (fig06 box plots).
    pub ewf_summary: Vec<DistributionSummary>,
}

/// Computes [`YearLaneStats`] for a batch of years in one K-lane pass
/// per reduction. Bit-identical to the scalar per-year expressions
/// (`year.operational()`, `year.water_intensity().mean()`,
/// `year.wue.mean()`, …) — the experiments' golden values pin this.
pub fn year_lane_stats(years: &[Arc<SystemYear>]) -> YearLaneStats {
    let k = years.len();
    assert!(k > 0, "a lane batch needs at least one year");
    let mut e = LaneBuffer::new(k);
    let mut w = LaneBuffer::new(k);
    let mut f = LaneBuffer::new(k);
    let pue: Vec<f64> = years.iter().map(|y| y.spec.pue.value()).collect();
    let energy_src: Vec<(&[f64], Option<f64>)> =
        years.iter().map(|y| (y.energy.values(), None)).collect();
    let wue_src: Vec<(&[f64], Option<f64>)> =
        years.iter().map(|y| (y.wue.values(), None)).collect();
    let ewf_src: Vec<(&[f64], Option<f64>)> =
        years.iter().map(|y| (y.ewf.values(), None)).collect();
    {
        let _span = span::span(span::LANE_PACK);
        e.pack_scaled(&energy_src);
        w.pack_scaled(&wue_src);
        f.pack_scaled(&ewf_src);
    }
    let mut direct = vec![0.0; k];
    let mut indirect = vec![0.0; k];
    let mut wue_mean = vec![0.0; k];
    let mut ewf_mean = vec![0.0; k];
    let mut wi = LaneBuffer::new(k);
    let mut wi_mean = vec![0.0; k];
    {
        let _span = span::span(span::FUSED_REDUCTION);
        lanes::dot_k(&e, &w, &mut direct);
        lanes::dot_k(&e, &f, &mut indirect);
        lanes::mean_k(&w, &mut wue_mean);
        lanes::mean_k(&f, &mut ewf_mean);
        lanes::add_scaled_k(&w, &f, &pue, &mut wi);
        lanes::mean_k(&wi, &mut wi_mean);
    }
    lanes_counter().add(k as u64);
    passes_counter().inc();
    lane_width_hist().record(k as u64);
    let operational = (0..k)
        .map(|l| OperationalBreakdown {
            direct: Liters::new(direct[l]),
            indirect: Liters::new(indirect[l] * pue[l]),
        })
        .collect();
    YearLaneStats {
        operational,
        wi_mean,
        wue_mean,
        ewf_mean,
        wue_summary: years.iter().map(|y| y.wue.summary()).collect(),
        ewf_summary: years.iter().map(|y| y.ewf.summary()).collect(),
    }
}

// --------------------------------------------------------- streaming topN

/// One entry of a [`TopN`] result: the ranking key, the caller's item
/// index (the deterministic tie-breaker), and the item.
#[derive(Debug, Clone)]
pub struct TopEntry<T> {
    /// The ranking key (ascending = better).
    pub key: f64,
    /// The caller-assigned item index; smaller wins key ties.
    pub index: u64,
    /// The carried item.
    pub item: T,
}

impl<T> TopEntry<T> {
    fn cmp_rank(&self, other: &Self) -> CmpOrdering {
        // IEEE total order on the key (NaN sorts after +inf — still a
        // total, deterministic order), then the index tie-break.
        self.key
            .total_cmp(&other.key)
            .then(self.index.cmp(&other.index))
    }
}

impl<T> PartialEq for TopEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_rank(other) == CmpOrdering::Equal
    }
}
impl<T> Eq for TopEntry<T> {}
impl<T> PartialOrd for TopEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for TopEntry<T> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.cmp_rank(other)
    }
}

/// A streaming top-N aggregator: a bounded binary max-heap keeping the N
/// smallest `(key, index)` entries seen so far, so a 10⁵–10⁶-cell sweep
/// ranks candidates without materializing every row.
///
/// **Determinism.** The kept set is "the N smallest under the total
/// order (key, then index)" — a property of the *set* of pushed entries,
/// independent of push order, chunking, or merge shape. Ties on the key
/// resolve by the caller-assigned index (expansion order), so results
/// are byte-identical at every thread count and chunk size
/// (`tests/batch.rs`).
#[derive(Debug, Clone)]
pub struct TopN<T> {
    capacity: usize,
    heap: BinaryHeap<TopEntry<T>>,
}

impl<T> TopN<T> {
    /// An empty aggregator keeping the best `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "top-N needs room for at least one entry");
        TopN {
            capacity,
            heap: BinaryHeap::with_capacity(capacity + 1),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently kept (≤ capacity).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers one entry; it is kept iff it ranks among the N best seen.
    pub fn push(&mut self, key: f64, index: u64, item: T) {
        topn_counter().inc();
        let entry = TopEntry { key, index, item };
        if self.heap.len() < self.capacity {
            self.heap.push(entry);
        } else if let Some(worst) = self.heap.peek() {
            if entry.cmp_rank(worst) == CmpOrdering::Less {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// Merges another aggregator's kept entries into this one (the
    /// index-ordered chunk merge; already-counted entries are not
    /// re-counted in [`stats`]).
    pub fn merge(&mut self, other: TopN<T>) {
        for entry in other.heap.into_vec() {
            let entry: TopEntry<T> = entry;
            if self.heap.len() < self.capacity {
                self.heap.push(entry);
            } else if let Some(worst) = self.heap.peek() {
                if entry.cmp_rank(worst) == CmpOrdering::Less {
                    self.heap.pop();
                    self.heap.push(entry);
                }
            }
        }
    }

    /// The kept entries in rank order (ascending key, index tie-break).
    pub fn into_sorted(self) -> Vec<TopEntry<T>> {
        self.heap.into_sorted_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thirstyflops_catalog::SystemId;

    #[test]
    fn aggregates_match_the_scalar_expressions_bit_for_bit() {
        let ctx = BatchContext::new();
        let mut warm = SystemSpec::reference(SystemId::Polaris);
        warm.nodes = 180;
        let mut scaled = SystemSpec::reference(SystemId::Fugaku);
        scaled.nodes = 300;
        let requests = vec![
            LaneRequest {
                spec: warm.clone(),
                seed: 7,
                wue_scale: None,
                ewf_scale: None,
                carbon_scale: None,
            },
            LaneRequest {
                spec: scaled.clone(),
                seed: 2023,
                wue_scale: Some(0.8),
                ewf_scale: Some(1.3),
                carbon_scale: Some(0.9),
            },
        ];
        let aggs = ctx.aggregate(&requests);
        for (req, agg) in requests.iter().zip(&aggs) {
            let year = SystemYear::simulate_uncached(req.spec.clone(), req.seed);
            let wue = match req.wue_scale {
                Some(k) => year.wue.scale(k),
                None => year.wue.clone(),
            };
            let ewf = match req.ewf_scale {
                Some(k) => year.ewf.scale(k),
                None => year.ewf.clone(),
            };
            let carbon = match req.carbon_scale {
                Some(k) => year.carbon.scale(k),
                None => year.carbon.clone(),
            };
            assert_eq!(agg.energy_kwh, year.energy.total());
            assert_eq!(agg.direct_l, year.energy.dot(&wue));
            assert_eq!(agg.indirect_per_pue_l, year.energy.dot(&ewf));
            assert_eq!(agg.carbon_g, year.energy.dot(&carbon));
            assert_eq!(agg.mean_wue, wue.mean());
            assert_eq!(agg.mean_ewf, ewf.mean());
            assert_eq!(agg.mean_carbon, carbon.mean());
            let monthly = year.energy.mul(&wue).monthly_sum();
            for (m, &month) in thirstyflops_timeseries::Month::ALL.iter().enumerate() {
                assert_eq!(agg.monthly_direct_l[m], monthly.get(month), "month {m}");
            }
        }
    }

    #[test]
    fn simulate_batch_matches_the_uncached_oracle() {
        let ctx = BatchContext::new();
        let mut a = SystemSpec::reference(SystemId::Marconi);
        a.nodes = 150;
        let requests = vec![(a.clone(), 11), (a, 12)];
        let batched = ctx.simulate_batch(&requests);
        for ((spec, seed), year) in requests.iter().zip(&batched) {
            let oracle = SystemYear::simulate_uncached(spec.clone(), *seed);
            assert_eq!(year.utilization, oracle.utilization);
            assert_eq!(year.energy, oracle.energy);
            assert_eq!(year.wue, oracle.wue);
            assert_eq!(year.ewf, oracle.ewf);
            assert_eq!(year.carbon, oracle.carbon);
        }
    }

    #[test]
    fn topn_keeps_the_n_best_with_index_tie_break() {
        let mut top = TopN::new(3);
        for (i, key) in [5.0, 1.0, 3.0, 1.0, 4.0, 2.0].iter().enumerate() {
            top.push(*key, i as u64, i);
        }
        let kept = top.into_sorted();
        let ranked: Vec<(f64, u64)> = kept.iter().map(|e| (e.key, e.index)).collect();
        // Two 1.0 keys tie — the earlier index wins the first slot.
        assert_eq!(ranked, vec![(1.0, 1), (1.0, 3), (2.0, 5)]);
    }

    #[test]
    fn topn_merge_order_does_not_matter() {
        let keys = [9.0, 2.0, 7.0, 2.0, 5.0, 1.0, 8.0, 3.0];
        let full = {
            let mut t = TopN::new(4);
            for (i, &k) in keys.iter().enumerate() {
                t.push(k, i as u64, ());
            }
            t.into_sorted()
        };
        let merged = {
            let mut left = TopN::new(4);
            let mut right = TopN::new(4);
            for (i, &k) in keys.iter().enumerate() {
                if i % 2 == 0 {
                    left.push(k, i as u64, ());
                } else {
                    right.push(k, i as u64, ());
                }
            }
            right.merge(left);
            right.into_sorted()
        };
        let a: Vec<(u64, f64)> = full.iter().map(|e| (e.index, e.key)).collect();
        let b: Vec<(u64, f64)> = merged.iter().map(|e| (e.index, e.key)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn batch_toggle_round_trips() {
        let before = enabled();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(before);
    }
}
