//! Deterministic span profiling over a fixed set of named hot stages.
//!
//! A span is a scoped RAII guard: `let _s = span(GRID_KERNEL);` at the
//! top of a stage, drop at the end. Each drop adds one invocation and
//! the elapsed nanoseconds to that stage's flat atomics, and credits the
//! elapsed time to the enclosing stage's child-time (tracked through a
//! thread-local), so `self_ns = total_ns − child_ns` reports exclusive
//! time per stage.
//!
//! **Determinism contract** (`docs/OBSERVABILITY.md`, extending
//! `docs/CONCURRENCY.md`): invocation counts are pure functions of the
//! input — bit-identical across thread counts and cache modes — because
//! every span sits on a code path whose execution count is itself
//! deterministic. `total_ns`/`self_ns` are wall-clock and explicitly
//! exempt. Parent→child attribution is also thread-local (a stage
//! spawning rayon work does not see the workers' spans as children), so
//! only the flat per-stage counts are part of the contract.
//!
//! **Cost.** Stages are compile-time constants; there is no
//! registration, no locking, and no allocation anywhere on this path.
//! Disabled (the default), `span()` is one relaxed load and a `None`
//! guard whose drop is a branch.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Per-job cluster workload simulation (`workload::cluster` via
/// `core::simulate::workload_series`) — one span per uniquely computed
/// (system, seed) trace.
pub const WORKLOAD_SIM: usize = 0;
/// Carbon-intensity grid kernel over an hourly series.
pub const GRID_KERNEL: usize = 1;
/// Hourly WUE series synthesis from a climate preset.
pub const WUE_SERIES: usize = 2;
/// Simulation-cache lookup (hit or miss) for a demanded system-year.
pub const CACHE_LOOKUP: usize = 3;
/// Packing scalar series into K-wide lanes for the batched kernel.
pub const LANE_PACK: usize = 4;
/// One fused multi-lane annual reduction pass.
pub const FUSED_REDUCTION: usize = 5;
/// One sweep chunk: prepare, aggregate, fold (batched or scalar).
pub const SWEEP_CHUNK: usize = 6;
/// Synthetic job-trace generation (`workload::TraceGenerator`), nested
/// inside [`WORKLOAD_SIM`].
pub const TRACE_GEN: usize = 7;
/// FCFS + EASY-backfill cluster-year scheduling
/// (`workload::ClusterSim`), nested inside [`WORKLOAD_SIM`].
pub const CLUSTER_SIM: usize = 8;
/// Utilization → hourly power/energy conversion
/// (`workload::PowerModel`), nested inside [`WORKLOAD_SIM`].
pub const POWER_MODEL: usize = 9;
/// Number of profiled stages.
pub const STAGE_COUNT: usize = 10;

/// Stage names, indexed by the stage constants.
pub const STAGE_NAMES: [&str; STAGE_COUNT] = [
    "workload_sim",
    "grid_kernel",
    "wue_series",
    "cache_lookup",
    "lane_pack",
    "fused_reduction",
    "sweep_chunk",
    "trace_gen",
    "cluster_sim",
    "power_model",
];

static ENABLED: AtomicBool = AtomicBool::new(false);
static INVOCATIONS: [AtomicU64; STAGE_COUNT] = [const { AtomicU64::new(0) }; STAGE_COUNT];
static TOTAL_NS: [AtomicU64; STAGE_COUNT] = [const { AtomicU64::new(0) }; STAGE_COUNT];
static CHILD_NS: [AtomicU64; STAGE_COUNT] = [const { AtomicU64::new(0) }; STAGE_COUNT];

thread_local! {
    /// The innermost open stage on this thread, stored as `stage + 1`
    /// (0 = none) so the resting state is the `Cell` default.
    static CURRENT: Cell<usize> = const { Cell::new(0) };
}

/// Turns profiling on or off process-wide. Off is the default; spans
/// created while off record nothing even if profiling is enabled before
/// they drop.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether profiling is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every stage's aggregates (bench harness use; not needed for
/// the CLI, which profiles whole processes).
pub fn reset() {
    for i in 0..STAGE_COUNT {
        INVOCATIONS[i].store(0, Ordering::Relaxed);
        TOTAL_NS[i].store(0, Ordering::Relaxed);
        CHILD_NS[i].store(0, Ordering::Relaxed);
    }
}

/// Opens a span over `stage` (one of the stage constants). The returned
/// guard records on drop; hold it for exactly the stage's extent.
///
/// Two independent sinks see the span: the flat per-stage atomics
/// (when profiling is enabled) and the causal trace recorder (when
/// [`crate::trace`] is enabled *and* this thread is inside a trace
/// context). Either may be on without the other.
#[must_use]
pub fn span(stage: usize) -> SpanGuard {
    let profiled = ENABLED.load(Ordering::Relaxed);
    let trace = crate::trace::open_span();
    if !profiled && trace.is_none() {
        return SpanGuard {
            stage,
            start: None,
            prev: 0,
            profiled: false,
            trace: None,
        };
    }
    let prev = if profiled {
        CURRENT.with(|c| c.replace(stage + 1))
    } else {
        0
    };
    SpanGuard {
        stage,
        start: Some(Instant::now()),
        prev,
        profiled,
        trace,
    }
}

/// RAII guard from [`span`]; records invocation + elapsed time on drop.
#[derive(Debug)]
pub struct SpanGuard {
    stage: usize,
    /// `None` when both sinks were off at open — the drop is a no-op.
    start: Option<Instant>,
    prev: usize,
    /// Whether the flat profiling atomics record this span (profiling
    /// was enabled at open).
    profiled: bool,
    /// The span's slot in the active trace, if one was recording.
    trace: Option<crate::trace::OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dt = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if self.profiled {
            INVOCATIONS[self.stage].fetch_add(1, Ordering::Relaxed);
            TOTAL_NS[self.stage].fetch_add(dt, Ordering::Relaxed);
            CURRENT.with(|c| c.set(self.prev));
            if self.prev > 0 {
                CHILD_NS[self.prev - 1].fetch_add(dt, Ordering::Relaxed);
            }
        }
        if let Some(open) = self.trace.take() {
            crate::trace::close_span(open, self.stage, dt);
        }
    }
}

/// One stage's aggregated profile.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StageProfile {
    /// Stage name (one of [`STAGE_NAMES`]).
    pub stage: String,
    /// How many spans closed over this stage — deterministic.
    pub invocations: u64,
    /// Total wall-clock nanoseconds inside the stage — *not*
    /// deterministic.
    pub total_ns: u64,
    /// `total_ns` minus time attributed to nested stages — *not*
    /// deterministic.
    pub self_ns: u64,
}

/// Snapshot of every stage, in stage-constant order (all stages appear,
/// including never-entered ones, so schemas are fixed).
pub fn snapshot() -> Vec<StageProfile> {
    (0..STAGE_COUNT)
        .map(|i| {
            let total = TOTAL_NS[i].load(Ordering::Relaxed);
            let child = CHILD_NS[i].load(Ordering::Relaxed);
            StageProfile {
                stage: STAGE_NAMES[i].to_string(),
                invocations: INVOCATIONS[i].load(Ordering::Relaxed),
                total_ns: total,
                self_ns: total.saturating_sub(child),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span state is process-global, so the span tests run as one test
    // body — parallel test threads would interleave counts otherwise.
    #[test]
    fn spans_record_nest_and_disable() {
        // Disabled spans record nothing.
        set_enabled(false);
        reset();
        {
            let _s = span(GRID_KERNEL);
        }
        assert_eq!(snapshot()[GRID_KERNEL].invocations, 0);

        // Enabled spans count, and nesting attributes child time.
        set_enabled(true);
        {
            let _outer = span(SWEEP_CHUNK);
            {
                let _inner = span(LANE_PACK);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        {
            let _again = span(LANE_PACK);
        }
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap[SWEEP_CHUNK].invocations, 1);
        assert_eq!(snap[LANE_PACK].invocations, 2);
        assert_eq!(snap.len(), STAGE_COUNT);
        assert_eq!(snap[SWEEP_CHUNK].stage, "sweep_chunk");
        // The outer stage's self time excludes the nested span's ≥2 ms.
        assert!(snap[SWEEP_CHUNK].self_ns <= snap[SWEEP_CHUNK].total_ns);
        let child_ns = snap[SWEEP_CHUNK].total_ns - snap[SWEEP_CHUNK].self_ns;
        assert!(child_ns >= 2_000_000, "child time {child_ns}ns < sleep");

        // A span opened while disabled stays silent even if enabling
        // happens before it drops.
        reset();
        let pending = span(WUE_SERIES);
        set_enabled(true);
        drop(pending);
        assert_eq!(snapshot()[WUE_SERIES].invocations, 0);
        set_enabled(false);
        reset();
    }
}
