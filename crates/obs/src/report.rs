//! The `--profile` report: the span snapshot plus the registry's
//! counters, rendered as a human table or JSON.
//!
//! The CLI prints this to **stderr** after the command finishes, so
//! stdout (the actual command output) stays byte-identical with
//! profiling on or off. The JSON form is the schema `./ci.sh obs-smoke`
//! validates and `tests/obs.rs` compares across thread counts — strip
//! the `*_ns` fields before comparing; they are wall-clock.

use crate::registry;
use crate::span::{self, StageProfile};
use crate::trace::{self, FoldedStack};

/// One registered counter's value at report time.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CounterSample {
    /// Rendered series name, labels included.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// The full profile: every span stage plus every registered counter.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ProfileReport {
    /// Per-stage span aggregates, in fixed stage order.
    pub stages: Vec<StageProfile>,
    /// Registered counters in exposition order (gauges and histograms
    /// excluded — counts are what the determinism contract covers).
    pub counters: Vec<CounterSample>,
    /// Flamegraph-style folded stacks from the trace recorder, sorted
    /// by path. Empty unless tracing was on (`--trace-out`); `count`
    /// is deterministic, `self_ns` is wall-clock.
    pub folded: Vec<FoldedStack>,
}

/// Captures the current profile.
pub fn profile_report() -> ProfileReport {
    ProfileReport {
        stages: span::snapshot(),
        counters: registry::counters_snapshot()
            .into_iter()
            .map(|(name, value)| CounterSample { name, value })
            .collect(),
        folded: trace::folded_snapshot(),
    }
}

/// The profile as pretty JSON with a trailing newline (the CLI's
/// `--profile --json` stderr payload).
pub fn profile_json() -> String {
    let mut body = serde_json::to_string_pretty(&profile_report()).expect("profile serializes");
    body.push('\n');
    body
}

/// The profile as a human-readable table (the CLI's plain `--profile`
/// stderr payload).
pub fn profile_table() -> String {
    let report = profile_report();
    let self_total: u64 = report.stages.iter().map(|s| s.self_ns).sum();
    let mut out = String::from("stage            invocations    total_ms     self_ms   self%\n");
    for s in &report.stages {
        let pct = if self_total == 0 {
            0.0
        } else {
            100.0 * s.self_ns as f64 / self_total as f64
        };
        out.push_str(&format!(
            "{:<16} {:>11} {:>11.3} {:>11.3} {:>6.1}\n",
            s.stage,
            s.invocations,
            s.total_ns as f64 / 1e6,
            s.self_ns as f64 / 1e6,
            pct,
        ));
    }
    if !report.counters.is_empty() {
        out.push_str("\ncounter                                                       value\n");
        for c in &report.counters {
            out.push_str(&format!("{:<57} {:>11}\n", c.name, c.value));
        }
    }
    if !report.folded.is_empty() {
        out.push_str("\nfolded stack                                        count     self_ms\n");
        for f in &report.folded {
            out.push_str(&format!(
                "{:<48} {:>8} {:>11.3}\n",
                f.stack,
                f.count,
                f.self_ns as f64 / 1e6,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_json_round_trips_and_ends_with_newline() {
        registry::counter("test_report_seen_total", "x").add(5);
        let json = profile_json();
        assert!(json.ends_with('\n'));
        let parsed: ProfileReport = serde_json::from_str(&json).expect("parses back");
        assert_eq!(parsed.stages.len(), crate::span::STAGE_COUNT);
        assert!(parsed
            .counters
            .iter()
            .any(|c| c.name == "test_report_seen_total" && c.value == 5));
    }

    #[test]
    fn table_lists_every_stage() {
        let table = profile_table();
        for name in crate::span::STAGE_NAMES {
            assert!(table.contains(name), "{name} missing from table");
        }
    }
}
