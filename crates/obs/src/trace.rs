//! Bounded causal trace recorder: span trees with parent links.
//!
//! The span profiler ([`crate::span`]) aggregates stages into flat
//! atomics; this module records *individual* span events — each with a
//! trace id, a span id, and a parent link — into one process-wide
//! fixed-capacity ring, so a request's (or a whole CLI run's) causal
//! tree can be exported as Chrome `trace_event` JSON or folded into a
//! flamegraph-style self-time rollup.
//!
//! **Contexts.** Recording is request-scoped: a thread opens a trace
//! context with [`begin`] (the CLI root, or `serve` per request) and
//! every span that opens while the context is active lands in the ring
//! with its parent set to the innermost open span. Fan-out sites
//! (`scenario::batch`) capture a [`TraceHandle`] before spawning and
//! [`TraceHandle::attach`] it on each worker, so worker spans join the
//! spawning trace with a deterministic parent (the span open at the
//! capture site), not whatever the worker happens to be doing.
//! Injected faults [`mark`] the active trace and are also collected
//! per-context for structured access logs.
//!
//! **Determinism** (`docs/OBSERVABILITY.md`, `docs/CONCURRENCY.md` rule
//! seven): the tree *shape* — stage names, parent edges, counts — is a
//! pure function of the input while the ring is within capacity;
//! timestamps, durations, and event *order* in the ring are wall-clock
//! and exempt. Span ids are per-trace sequential and allocation order
//! is scheduling-dependent, which is why shape comparisons go through
//! the canonical [`folded_snapshot`] rollup, never raw ids. Sampling
//! ([`sampled`]) keys off the deterministic request ordinal, never
//! wall-clock or RNG.
//!
//! **Cost.** Disabled (the default), the hook in [`crate::span::span`]
//! is one relaxed load. Enabled, span open is thread-local work plus
//! one relaxed `fetch_add`; the ring mutex is taken only at span close
//! and only on threads inside a recording context — "lock-minimal",
//! not lock-free, which is fine off the disabled path.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::span::STAGE_NAMES;

/// Default ring capacity, in events. Bounds recorder memory to a few
/// MiB regardless of how long a server runs; at capacity the oldest
/// events are overwritten and counted in `dropped`.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// What a ring entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A closed span (has a duration).
    Span,
    /// An instant annotation (an injected fault site; zero duration).
    Mark,
}

/// One recorded event. `start_ns` is the offset from the owning
/// trace's begin instant, so events of one trace share a clock.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Owning trace (the request ordinal; 0 for the CLI root).
    pub trace_id: u64,
    /// Per-trace sequential span id (1-based; ids are *not* part of
    /// the determinism contract — allocation order races).
    pub span_id: u32,
    /// Enclosing span's id, 0 for trace roots.
    pub parent_id: u32,
    /// Stage name ([`crate::span::STAGE_NAMES`]) or fault site name.
    pub name: &'static str,
    /// Span or mark.
    pub kind: EventKind,
    /// Nanoseconds since the trace began.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 for marks).
    pub dur_ns: u64,
}

struct Ring {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn snapshot(&self, last: Option<usize>) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        if let Some(n) = last {
            if out.len() > n {
                out.drain(..out.len() - n);
            }
        }
        out
    }
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(Ring::new(DEFAULT_CAPACITY)))
}

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Sample divisor: a request with ordinal `o` records iff
/// `o % divisor == 0`. 1 (the default) records everything.
static SAMPLE: AtomicU64 = AtomicU64::new(1);

/// Turns the trace recorder on or off process-wide. Off is the
/// default; while off, span open sees one relaxed load and no
/// thread-local access.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether the recorder is enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets the sampling divisor (`--trace-sample N` / `1/N`); 0 is
/// normalized to 1 (record every trace).
pub fn set_sample(divisor: u64) {
    SAMPLE.store(divisor.max(1), Ordering::SeqCst);
}

/// The current sampling divisor.
pub fn sample() -> u64 {
    SAMPLE.load(Ordering::Relaxed)
}

/// The deterministic sampling rule: trace `ordinal` records iff
/// `ordinal % divisor == 0`. Never wall-clock, never RNG, so which
/// requests are traced is reproducible from the request sequence
/// alone (the CLI root is ordinal 0 and therefore always sampled).
pub fn sampled(ordinal: u64) -> bool {
    ordinal % sample() == 0
}

/// Resizes the ring (dropping recorded events). Test/config use.
pub fn set_capacity(capacity: usize) {
    let mut r = ring().lock().expect("trace ring lock");
    *r = Ring::new(capacity);
}

/// Clears the ring and the dropped counter; capacity is kept.
pub fn reset() {
    let mut r = ring().lock().expect("trace ring lock");
    let capacity = r.capacity;
    *r = Ring::new(capacity);
}

/// Events overwritten since the last [`reset`].
pub fn dropped() -> u64 {
    ring().lock().expect("trace ring lock").dropped
}

/// State shared by every thread participating in one trace.
#[derive(Debug)]
struct TraceShared {
    trace_id: u64,
    started: Instant,
    /// Next span id; per-trace so ids stay small and self-contained.
    next_span: AtomicU32,
    /// Whether span/mark events go to the ring (false when the trace
    /// was sampled out — fault marks are still collected for logs).
    record: bool,
    /// Injected-fault sites observed anywhere in this trace, for the
    /// structured access log.
    marks: Mutex<Vec<&'static str>>,
}

/// One thread's view of a trace: the shared state plus the stack of
/// open span ids (the base element is the attach parent and is never
/// popped, so the stack is always non-empty).
struct LocalCtx {
    shared: Arc<TraceShared>,
    stack: Vec<u32>,
}

thread_local! {
    /// Innermost-last stack of active contexts on this thread (begin
    /// and attach push; their guards pop).
    static CTX: RefCell<Vec<LocalCtx>> = const { RefCell::new(Vec::new()) };
}

/// Opens a trace context on the current thread. `record` decides
/// whether events reach the ring (pass the sampling verdict); fault
/// marks are collected either way so access logs stay complete for
/// sampled-out requests. The guard closes the context on drop.
#[must_use]
pub fn begin(trace_id: u64, record: bool) -> TraceGuard {
    let shared = Arc::new(TraceShared {
        trace_id,
        started: Instant::now(),
        next_span: AtomicU32::new(1),
        record,
        marks: Mutex::new(Vec::new()),
    });
    CTX.with(|c| {
        c.borrow_mut().push(LocalCtx {
            shared: Arc::clone(&shared),
            stack: vec![0],
        })
    });
    TraceGuard { shared }
}

/// RAII guard from [`begin`]; dropping it closes the context.
#[derive(Debug)]
pub struct TraceGuard {
    shared: Arc<TraceShared>,
}

impl TraceGuard {
    /// Injected-fault sites observed in this trace so far (across all
    /// attached threads), in observation order.
    pub fn fault_marks(&self) -> Vec<&'static str> {
        self.shared.marks.lock().expect("trace marks lock").clone()
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CTX.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// A capturable reference to the active trace, for handing to fan-out
/// workers. The parent is pinned at capture time, so every worker
/// span attaches under the same deterministic edge regardless of
/// scheduling.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    shared: Arc<TraceShared>,
    parent: u32,
}

impl TraceHandle {
    /// Joins the captured trace on the current thread. Spans opened
    /// while the guard lives record with the captured parent edge.
    #[must_use]
    pub fn attach(&self) -> AttachGuard {
        CTX.with(|c| {
            c.borrow_mut().push(LocalCtx {
                shared: Arc::clone(&self.shared),
                stack: vec![self.parent],
            })
        });
        AttachGuard
    }
}

/// RAII guard from [`TraceHandle::attach`]; detaches on drop.
#[derive(Debug)]
pub struct AttachGuard;

impl Drop for AttachGuard {
    fn drop(&mut self) {
        CTX.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// The active trace on this thread, if any, with the innermost open
/// span pinned as the parent for attached work. `Some` even for
/// sampled-out traces so fault marks keep propagating.
pub fn handle() -> Option<TraceHandle> {
    CTX.with(|c| {
        c.borrow().last().map(|ctx| TraceHandle {
            shared: Arc::clone(&ctx.shared),
            parent: *ctx.stack.last().expect("trace stack is never empty"),
        })
    })
}

/// A span admitted to the active trace at open; closed by
/// `close_span` from the span guard's drop.
#[derive(Debug)]
pub struct OpenSpan {
    shared: Arc<TraceShared>,
    span_id: u32,
    parent_id: u32,
    start_ns: u64,
}

/// Hook for [`crate::span::span`]: admits the opening span to the
/// active trace, if the recorder is on and this thread is inside a
/// recording context. Cheap `None` otherwise.
pub(crate) fn open_span() -> Option<OpenSpan> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    CTX.with(|c| {
        let mut ctxs = c.borrow_mut();
        let ctx = ctxs.last_mut()?;
        if !ctx.shared.record {
            return None;
        }
        let span_id = ctx.shared.next_span.fetch_add(1, Ordering::Relaxed);
        let parent_id = *ctx.stack.last().expect("trace stack is never empty");
        ctx.stack.push(span_id);
        Some(OpenSpan {
            shared: Arc::clone(&ctx.shared),
            span_id,
            parent_id,
            start_ns: elapsed_ns(&ctx.shared.started),
        })
    })
}

/// Hook for the span guard's drop: pops the context stack and pushes
/// the completed span event to the ring.
pub(crate) fn close_span(open: OpenSpan, stage: usize, dur_ns: u64) {
    CTX.with(|c| {
        let mut ctxs = c.borrow_mut();
        if let Some(ctx) = ctxs.last_mut() {
            if Arc::ptr_eq(&ctx.shared, &open.shared) && ctx.stack.last() == Some(&open.span_id) {
                ctx.stack.pop();
            }
        }
    });
    ring().lock().expect("trace ring lock").push(TraceEvent {
        trace_id: open.shared.trace_id,
        span_id: open.span_id,
        parent_id: open.parent_id,
        name: STAGE_NAMES[stage],
        kind: EventKind::Span,
        start_ns: open.start_ns,
        dur_ns,
    });
}

/// Annotates the active trace with an instant mark (an injected fault
/// site). Always collected on the context for access logs; recorded
/// into the ring only for sampled traces. No-op without a context.
pub fn mark(site: &'static str) {
    CTX.with(|c| {
        let ctxs = c.borrow();
        let Some(ctx) = ctxs.last() else { return };
        ctx.shared
            .marks
            .lock()
            .expect("trace marks lock")
            .push(site);
        if !ctx.shared.record || !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        let span_id = ctx.shared.next_span.fetch_add(1, Ordering::Relaxed);
        let parent_id = *ctx.stack.last().expect("trace stack is never empty");
        ring().lock().expect("trace ring lock").push(TraceEvent {
            trace_id: ctx.shared.trace_id,
            span_id,
            parent_id,
            name: site,
            kind: EventKind::Mark,
            start_ns: elapsed_ns(&ctx.shared.started),
            dur_ns: 0,
        });
    });
}

fn elapsed_ns(started: &Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The ring's events, oldest first (optionally only the last `n`),
/// plus how many older events were overwritten.
pub fn events_snapshot(last: Option<usize>) -> (Vec<TraceEvent>, u64) {
    let r = ring().lock().expect("trace ring lock");
    (r.snapshot(last), r.dropped)
}

/// Formats nanoseconds as Chrome's microsecond timestamps.
fn chrome_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders the ring (optionally only the last `n` events) as Chrome
/// `trace_event` JSON (object format). Spans are complete (`"X"`)
/// events, fault marks are instants (`"i"`); each trace renders as
/// its own track (`tid` = trace id) with per-trace-relative clocks.
pub fn chrome_trace_json(last: Option<usize>) -> String {
    let (events, dropped) = events_snapshot(last);
    let mut out = String::with_capacity(64 + events.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":");
    out.push_str(&dropped.to_string());
    out.push_str("},\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let common = format!(
            "\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"trace\":{},\"span\":{},\"parent\":{}}}",
            chrome_us(e.start_ns),
            e.trace_id,
            e.trace_id,
            e.span_id,
            e.parent_id,
        );
        match e.kind {
            EventKind::Span => out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"thirstyflops\",\"ph\":\"X\",\"dur\":{},{}}}",
                e.name,
                chrome_us(e.dur_ns),
                common,
            )),
            EventKind::Mark => out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",{}}}",
                e.name, common,
            )),
        }
    }
    out.push_str("\n]}\n");
    out
}

/// One folded stack: the `;`-joined ancestor path of a stage, how
/// many spans closed on that exact path, and their summed self-time.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FoldedStack {
    /// `parent;child;…;stage` path of stage names.
    pub stack: String,
    /// Spans closed on this path — deterministic (the tree-shape
    /// contract) while the ring stays within capacity.
    pub count: u64,
    /// Summed `dur − direct children's dur` — wall-clock, exempt.
    pub self_ns: u64,
}

/// Folds span events into per-path `(count, self-time)` rollups,
/// sorted by path. This is the canonical tree *shape*: ids and
/// timestamps are erased, so the output is comparable across thread
/// counts and cache modes.
pub fn folded(events: &[TraceEvent]) -> Vec<FoldedStack> {
    use std::collections::{BTreeMap, HashMap};
    let mut spans: HashMap<(u64, u32), usize> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.kind == EventKind::Span {
            spans.insert((e.trace_id, e.span_id), i);
        }
    }
    let mut child_ns: Vec<u64> = vec![0; events.len()];
    for e in events {
        if e.kind != EventKind::Span || e.parent_id == 0 {
            continue;
        }
        if let Some(&pi) = spans.get(&(e.trace_id, e.parent_id)) {
            child_ns[pi] = child_ns[pi].saturating_add(e.dur_ns);
        }
    }
    let mut acc: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.kind != EventKind::Span {
            continue;
        }
        let mut names = vec![e.name];
        let mut parent = e.parent_id;
        // Parent chains are acyclic (ids only grow), but cap the walk
        // so a ring that overwrote an ancestor cannot loop forever.
        for _ in 0..64 {
            if parent == 0 {
                break;
            }
            match spans.get(&(e.trace_id, parent)) {
                Some(&pi) => {
                    names.push(events[pi].name);
                    parent = events[pi].parent_id;
                }
                None => {
                    // Ancestor evicted at capacity — flag the orphan
                    // rather than silently promoting it to a root.
                    names.push("…");
                    break;
                }
            }
        }
        names.reverse();
        let path = names.join(";");
        let slot = acc.entry(path).or_insert((0, 0));
        slot.0 += 1;
        slot.1 = slot.1.saturating_add(e.dur_ns.saturating_sub(child_ns[i]));
    }
    acc.into_iter()
        .map(|(stack, (count, self_ns))| FoldedStack {
            stack,
            count,
            self_ns,
        })
        .collect()
}

/// [`folded`] over the whole ring.
pub fn folded_snapshot() -> Vec<FoldedStack> {
    folded(&events_snapshot(None).0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    // Recorder state is process-global, so everything runs as one test
    // body — parallel test threads would interleave the ring.
    #[test]
    fn recorder_contexts_ring_and_folded() {
        // Disabled recorder: spans record nothing even in a context.
        set_enabled(false);
        reset();
        {
            let _t = begin(1, true);
            let _s = span::span(span::GRID_KERNEL);
        }
        assert!(events_snapshot(None).0.is_empty());

        // Enabled + context: nested spans land with parent links.
        set_enabled(true);
        {
            let _t = begin(7, true);
            {
                let _outer = span::span(span::SWEEP_CHUNK);
                let _inner = span::span(span::LANE_PACK);
            }
            let _sibling = span::span(span::LANE_PACK);
        }
        let (events, dropped) = events_snapshot(None);
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.trace_id == 7));
        let outer = events
            .iter()
            .find(|e| e.name == "sweep_chunk")
            .expect("outer span recorded");
        assert_eq!(outer.parent_id, 0);
        let nested = events
            .iter()
            .find(|e| e.name == "lane_pack" && e.parent_id == outer.span_id)
            .expect("nested span parents to outer");
        assert_eq!(nested.kind, EventKind::Span);
        assert!(events
            .iter()
            .any(|e| e.name == "lane_pack" && e.parent_id == 0));

        // Folded rollup erases ids into canonical paths.
        let folded = folded_snapshot();
        let paths: Vec<(&str, u64)> = folded.iter().map(|f| (f.stack.as_str(), f.count)).collect();
        assert_eq!(
            paths,
            vec![
                ("lane_pack", 1),
                ("sweep_chunk", 1),
                ("sweep_chunk;lane_pack", 1)
            ]
        );

        // Spans without a context stay out of the ring.
        reset();
        {
            let _s = span::span(span::GRID_KERNEL);
        }
        assert!(events_snapshot(None).0.is_empty());

        // Sampled-out contexts record no events but still collect
        // fault marks for the access log.
        {
            let t = begin(3, false);
            let _s = span::span(span::GRID_KERNEL);
            mark("handler_panic");
            assert_eq!(t.fault_marks(), vec!["handler_panic"]);
        }
        assert!(events_snapshot(None).0.is_empty());

        // Recording contexts get the mark as an instant event, and
        // attached handles join with the captured parent edge.
        {
            let t = begin(9, true);
            let root = span::span(span::SWEEP_CHUNK);
            let handle = handle().expect("context active");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _a = handle.attach();
                    let _w = span::span(span::WORKLOAD_SIM);
                    mark("simcache_poison");
                });
            });
            drop(root);
            assert_eq!(t.fault_marks(), vec!["simcache_poison"]);
        }
        let (events, _) = events_snapshot(None);
        let root = events.iter().find(|e| e.name == "sweep_chunk").unwrap();
        let worker = events.iter().find(|e| e.name == "workload_sim").unwrap();
        assert_eq!(worker.parent_id, root.span_id);
        let fault = events
            .iter()
            .find(|e| e.kind == EventKind::Mark)
            .expect("mark recorded");
        assert_eq!(fault.name, "simcache_poison");
        assert_eq!(fault.dur_ns, 0);

        // Chrome export is well-formed and carries both event kinds.
        let json = chrome_trace_json(None);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}\n"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"workload_sim\""));

        // The ring is bounded: at capacity it overwrites the oldest
        // events and counts the drops instead of growing.
        set_capacity(4);
        {
            let _t = begin(11, true);
            for _ in 0..10 {
                let _s = span::span(span::GRID_KERNEL);
            }
        }
        let (events, dropped) = events_snapshot(None);
        assert_eq!(events.len(), 4);
        assert_eq!(dropped, 6);
        assert_eq!(self::dropped(), 6);
        // `last=N` trims from the oldest side.
        assert_eq!(events_snapshot(Some(2)).0.len(), 2);

        // Sampling is a pure function of the ordinal.
        set_sample(4);
        assert!(sampled(0));
        assert!(!sampled(3));
        assert!(sampled(8));
        set_sample(0);
        assert_eq!(sample(), 1);

        set_enabled(false);
        set_capacity(DEFAULT_CAPACITY);
    }
}
