//! Workspace-wide observability substrate: a global metrics registry, the
//! shared log₂-bucket latency histogram, deterministic span profiling, and
//! Prometheus text exposition.
//!
//! Three parts, all std-only and lock-free on the hot path:
//!
//! - **[`registry`]** — named counters, gauges, and histograms registered
//!   once and updated through cloneable atomic handles. Producers (the
//!   simulation cache, the batch kernel, the sweep evaluator, the cluster
//!   simulator) register their counters here instead of keeping private
//!   statics; consumers render everything in one stable-sorted Prometheus
//!   text body.
//! - **[`span`]** — scoped RAII spans over a fixed set of named hot
//!   stages, aggregating `{invocations, total/self wall-time}` into flat
//!   per-stage atomics. Invocation counts are bit-identical across thread
//!   counts and cache modes (`docs/OBSERVABILITY.md`); durations are
//!   wall-clock and explicitly exempt. Disabled spans cost one relaxed
//!   atomic load and allocate nothing.
//! - **[`trace`]** — a bounded causal trace recorder: per-request span
//!   trees with parent links in a fixed-capacity ring, exported as
//!   Chrome `trace_event` JSON, a folded-stacks rollup, and fault
//!   annotations for structured access logs. Tree *shape* is
//!   deterministic; timestamps are not.
//! - **[`prom`] / [`report`]** — the Prometheus text writer shared by the
//!   registry and `serve`'s per-instance endpoint table, and the
//!   `--profile` report (human table or JSON) the CLI prints to stderr.
//!
//! The one invariant everything here serves: observability must never
//! change observed output. Every CLI `--json` body and HTTP response is
//! byte-identical with the layer enabled, disabled, or absent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod prom;
pub mod registry;
pub mod report;
pub mod span;
pub mod trace;

pub use hist::LatencyHistogram;
pub use registry::Counter;
