//! The global metrics registry: named counters, gauges, and histograms.
//!
//! Registration happens once per series (idempotent — re-registering a
//! name+labels pair returns a handle to the existing series) under one
//! mutex; updates never touch the registry again, they go straight
//! through cloneable atomic handles. Families and series live in
//! `BTreeMap`s keyed by name and rendered label string, so exposition
//! order is stable and the `/v1/metrics` body is deterministic modulo
//! the values themselves.
//!
//! Naming scheme (`docs/OBSERVABILITY.md`): every family is prefixed
//! `thirstyflops_`, counters end in `_total`, and label values identify
//! the sub-resource (for example
//! `thirstyflops_simcache_hits_total{cache="system_years"}`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::LatencyHistogram;
use crate::prom::PromWriter;

/// A cloneable, wait-free counter handle.
///
/// `detached()` makes a counter that is not in the registry — the update
/// paths are identical, so instance-local users (per-test caches, the
/// serve result cache) share code with registered ones.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter not attached to the registry.
    pub fn detached() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::detached()
    }
}

/// One series' value source.
enum Series {
    Counter(Counter),
    /// Gauges are plain function pointers sampled at render time, so a
    /// crate can expose "is the cache enabled" without the registry
    /// holding state.
    Gauge(fn() -> f64),
    Histogram(Arc<LatencyHistogram>),
}

/// One metric family: shared help/kind, one series per label set.
struct Family {
    help: &'static str,
    kind: &'static str,
    /// Keyed by the rendered inner label string (`cache="grid_years"`,
    /// empty for unlabeled) — `BTreeMap` order is exposition order.
    series: BTreeMap<String, Series>,
}

fn registry() -> &'static Mutex<BTreeMap<String, Family>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Family>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Renders labels as the inner Prometheus label string, without braces.
fn render_labels(labels: &[(&str, &str)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect::<Vec<_>>()
        .join(",")
}

fn register(
    name: &str,
    labels: &[(&str, &str)],
    help: &'static str,
    kind: &'static str,
    make: impl FnOnce() -> Series,
) -> &'static Mutex<BTreeMap<String, Family>> {
    let key = render_labels(labels);
    let reg = registry();
    let mut map = reg.lock().expect("obs registry lock");
    let family = map.entry(name.to_string()).or_insert_with(|| Family {
        help,
        kind,
        series: BTreeMap::new(),
    });
    assert_eq!(
        family.kind, kind,
        "metric {name:?} registered twice with different kinds"
    );
    family.series.entry(key).or_insert_with(make);
    reg
}

/// Registers (or finds) an unlabeled counter.
pub fn counter(name: &str, help: &'static str) -> Counter {
    counter_labeled(name, &[], help)
}

/// Registers (or finds) a counter with the given label set.
pub fn counter_labeled(name: &str, labels: &[(&str, &str)], help: &'static str) -> Counter {
    let reg = register(name, labels, help, "counter", || {
        Series::Counter(Counter::detached())
    });
    let key = render_labels(labels);
    let map = reg.lock().expect("obs registry lock");
    match map.get(name).and_then(|f| f.series.get(&key)) {
        Some(Series::Counter(c)) => c.clone(),
        _ => unreachable!("{name} was just registered as a counter"),
    }
}

/// Registers a gauge sampled from `f` at render time. Idempotent; the
/// first registered function wins.
pub fn gauge(name: &str, help: &'static str, f: fn() -> f64) {
    register(name, &[], help, "gauge", || Series::Gauge(f));
}

/// Registers (or finds) an unlabeled histogram.
pub fn histogram(name: &str, help: &'static str) -> Arc<LatencyHistogram> {
    histogram_labeled(name, &[], help)
}

/// Registers (or finds) a histogram with the given label set.
pub fn histogram_labeled(
    name: &str,
    labels: &[(&str, &str)],
    help: &'static str,
) -> Arc<LatencyHistogram> {
    let reg = register(name, labels, help, "histogram", || {
        Series::Histogram(Arc::new(LatencyHistogram::default()))
    });
    let key = render_labels(labels);
    let map = reg.lock().expect("obs registry lock");
    match map.get(name).and_then(|f| f.series.get(&key)) {
        Some(Series::Histogram(h)) => Arc::clone(h),
        _ => unreachable!("{name} was just registered as a histogram"),
    }
}

/// Snapshot of every registered counter as `(rendered name, value)`,
/// in exposition order. Gauges and histograms are excluded on purpose:
/// this feeds the `--profile` report's count-determinism comparisons,
/// which only hold for work counters.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    let map = registry().lock().expect("obs registry lock");
    let mut out = Vec::new();
    for (name, family) in map.iter() {
        for (labels, series) in family.series.iter() {
            if let Series::Counter(c) = series {
                let rendered = if labels.is_empty() {
                    name.clone()
                } else {
                    format!("{name}{{{labels}}}")
                };
                out.push((rendered, c.get()));
            }
        }
    }
    out
}

/// Renders every registered family as Prometheus text exposition, in
/// stable (name, label) order.
pub fn render_prometheus() -> String {
    let map = registry().lock().expect("obs registry lock");
    let mut w = PromWriter::new();
    for (name, family) in map.iter() {
        w.header(name, family.help, family.kind);
        for (labels, series) in family.series.iter() {
            match series {
                Series::Counter(c) => w.sample_u64(name, labels, c.get()),
                Series::Gauge(f) => w.sample_f64(name, labels, f()),
                Series::Histogram(h) => w.histogram(name, labels, h),
            }
        }
    }
    w.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_idempotent_and_shared() {
        let a = counter("test_reg_shared_total", "x");
        let b = counter("test_reg_shared_total", "x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let a = counter_labeled("test_reg_labeled_total", &[("k", "a")], "x");
        let b = counter_labeled("test_reg_labeled_total", &[("k", "b")], "x");
        a.inc();
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn detached_counters_update_without_registering() {
        let d = Counter::detached();
        d.add(41);
        d.inc();
        assert_eq!(d.get(), 42);
        // Two detached counters never alias.
        let e = Counter::detached();
        assert_eq!(e.get(), 0);
    }

    #[test]
    fn snapshot_renders_labels_and_sorts() {
        counter_labeled("test_reg_snap_total", &[("k", "b")], "x").inc();
        counter_labeled("test_reg_snap_total", &[("k", "a")], "x").add(2);
        let snap = counters_snapshot();
        let ours: Vec<_> = snap
            .iter()
            .filter(|(n, _)| n.starts_with("test_reg_snap_total"))
            .collect();
        assert_eq!(ours.len(), 2);
        assert_eq!(ours[0].0, "test_reg_snap_total{k=\"a\"}");
        assert_eq!(ours[0].1, 2);
        assert_eq!(ours[1].0, "test_reg_snap_total{k=\"b\"}");
        assert_eq!(ours[1].1, 1);
    }

    #[test]
    fn render_emits_help_type_and_samples() {
        counter("test_reg_render_total", "how many renders").add(7);
        gauge("test_reg_render_gauge", "a gauge", || 2.5);
        let h = histogram("test_reg_render_hist", "a histogram");
        h.record(100);
        let text = render_prometheus();
        assert!(text.contains("# HELP test_reg_render_total how many renders\n"));
        assert!(text.contains("# TYPE test_reg_render_total counter\n"));
        assert!(text.contains("test_reg_render_total 7\n"));
        assert!(text.contains("test_reg_render_gauge 2.5\n"));
        assert!(text.contains("# TYPE test_reg_render_hist histogram\n"));
        assert!(text.contains("test_reg_render_hist_bucket{le=\"127\"} 1\n"));
        assert!(text.contains("test_reg_render_hist_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("test_reg_render_hist_count 1\n"));
        assert!(text.contains("test_reg_render_hist_sum 100\n"));
    }

    #[test]
    fn render_is_stable_across_calls() {
        counter("test_reg_stable_total", "x").inc();
        assert_eq!(render_prometheus(), render_prometheus());
    }
}
