//! The shared log₂-bucket histogram (originally `serve`'s latency
//! histogram, generalized here so every crate records into the same
//! shape).
//!
//! Values land in power-of-two buckets: bucket 0 holds exactly 0, bucket
//! *i* ≥ 1 holds `[2^(i-1), 2^i)`. Recording is one relaxed `fetch_add`;
//! quantiles read the whole table and return the bucket's inclusive upper
//! bound, so reported values are exact to within 2× — plenty for p50/p99
//! tables and cheap enough to leave on in production.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: values up to ~8.4e6 resolve to their own bucket
/// (for latencies in µs that is ~8.4 s); everything larger clamps into
/// the last bucket.
pub const BUCKETS: usize = 24;

/// A fixed-size log₂ histogram of `u64` samples.
///
/// `record` is wait-free (one relaxed atomic add); readers may observe a
/// mid-update snapshot, which for monotone counters only ever
/// under-reports momentarily.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    /// Running sum of recorded values (Prometheus `_sum`).
    sum: AtomicU64,
}

impl LatencyHistogram {
    /// Records one sample.
    pub fn record(&self, micros: u64) {
        let idx = (64 - u64::leading_zeros(micros) as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded values (saturating only at `u64::MAX` wrap,
    /// which at µs granularity is ~585k years of accumulated latency).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The q-quantile (`0 < q <= 1`) as the inclusive upper bound of the
    /// bucket containing the rank-q sample; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::upper_bound(idx);
            }
        }
        Self::upper_bound(BUCKETS - 1)
    }

    /// Snapshot of the raw per-bucket counts, in bucket order.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Inclusive upper bound of bucket `idx`: 0 for bucket 0, else
    /// `2^idx - 1`. The last bucket clamps, so its true bound is +∞ —
    /// exposition renders it as `+Inf`.
    pub fn upper_bound(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else {
            (1 << idx) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn buckets_round_up_to_power_of_two_bounds() {
        let h = LatencyHistogram::default();
        h.record(0);
        assert_eq!(h.quantile(0.5), 0);
        let h = LatencyHistogram::default();
        h.record(100);
        assert_eq!(h.quantile(0.5), 127);
        let h = LatencyHistogram::default();
        h.record(u64::MAX);
        assert_eq!(h.quantile(0.5), (1 << (BUCKETS - 1)) - 1);
    }

    #[test]
    fn quantiles_split_a_bimodal_load() {
        let h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(5_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 * 100 + 10 * 5_000);
        assert_eq!(h.quantile(0.5), 127);
        assert_eq!(h.quantile(0.9), 127);
        assert_eq!(h.quantile(0.99), 8_191);
    }

    #[test]
    fn single_outlier_moves_only_the_tail() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(0.9), 15);
        assert_eq!(h.quantile(0.99), 15);
    }

    #[test]
    fn bucket_counts_and_bounds_agree_with_record() {
        let h = LatencyHistogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 2);
        assert_eq!(LatencyHistogram::upper_bound(0), 0);
        assert_eq!(LatencyHistogram::upper_bound(1), 1);
        assert_eq!(LatencyHistogram::upper_bound(2), 3);
        assert_eq!(LatencyHistogram::upper_bound(7), 127);
    }
}
