//! Prometheus text-exposition writer, shared by the global registry and
//! by `serve`'s instance-local endpoint table so `/v1/metrics` renders
//! both through one code path.
//!
//! Output follows the text format version 0.0.4: `# HELP` / `# TYPE`
//! headers per family, one sample per line, histogram families expanded
//! into cumulative `_bucket{le=...}` lines plus `_count` and `_sum`.
//! Callers pass labels as the *inner* rendered string
//! (`endpoint="rank"`, empty for none); the writer adds braces and, for
//! histograms, merges in the `le` label.

use crate::hist::{LatencyHistogram, BUCKETS};

/// An append-only Prometheus text body under construction.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty body.
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    /// Writes a family's `# HELP` and `# TYPE` lines.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    fn sample(&mut self, name: &str, labels: &str, value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            self.out.push_str(labels);
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }

    /// One integer sample line.
    pub fn sample_u64(&mut self, name: &str, labels: &str, value: u64) {
        self.sample(name, labels, &value.to_string());
    }

    /// One float sample line.
    pub fn sample_f64(&mut self, name: &str, labels: &str, value: f64) {
        self.sample(name, labels, &value.to_string());
    }

    /// Expands one histogram series: cumulative `_bucket` lines with
    /// `le` bounds `0, 1, 3, …, 2^(BUCKETS-2)−1, +Inf`, then `_count`
    /// and `_sum`.
    pub fn histogram(&mut self, name: &str, labels: &str, hist: &LatencyHistogram) {
        let counts = hist.bucket_counts();
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (idx, count) in counts.iter().enumerate() {
            cumulative += count;
            let le = if idx + 1 == BUCKETS {
                "+Inf".to_string()
            } else {
                LatencyHistogram::upper_bound(idx).to_string()
            };
            let with_le = if labels.is_empty() {
                format!("le=\"{le}\"")
            } else {
                format!("{labels},le=\"{le}\"")
            };
            self.sample_u64(&bucket_name, &with_le, cumulative);
        }
        self.sample_u64(&format!("{name}_count"), labels, cumulative);
        self.sample_u64(&format!("{name}_sum"), labels, hist.sum());
    }

    /// The finished body.
    pub fn into_string(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_render_with_and_without_labels() {
        let mut w = PromWriter::new();
        w.header("x_total", "things", "counter");
        w.sample_u64("x_total", "", 3);
        w.sample_u64("x_total", "k=\"v\"", 4);
        w.sample_f64("y", "", 1.5);
        assert_eq!(
            w.into_string(),
            "# HELP x_total things\n# TYPE x_total counter\nx_total 3\nx_total{k=\"v\"} 4\ny 1.5\n"
        );
    }

    #[test]
    fn histograms_expand_cumulatively_with_inf_and_sum() {
        let h = LatencyHistogram::default();
        h.record(0);
        h.record(100);
        h.record(u64::MAX);
        let mut w = PromWriter::new();
        w.histogram("lat", "e=\"rank\"", &h);
        let text = w.into_string();
        assert!(text.contains("lat_bucket{e=\"rank\",le=\"0\"} 1\n"));
        assert!(text.contains("lat_bucket{e=\"rank\",le=\"127\"} 2\n"));
        assert!(text.contains("lat_bucket{e=\"rank\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_count{e=\"rank\"} 3\n"));
        assert!(text.ends_with(&format!(
            "lat_sum{{e=\"rank\"}} {}\n",
            100u64.wrapping_add(u64::MAX)
        )));
        // Cumulative counts never decrease.
        let mut last = 0;
        for line in text.lines().filter(|l| l.starts_with("lat_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }
}
